//! Middleboxes: stateful firewalls and NAT, the machinery behind the
//! paper's "cellular network opaqueness" (§4.4).
//!
//! Cellular operators place NAT and firewall policy at their packet
//! gateways; externally generated traffic cannot reach devices or most
//! infrastructure (Wang et al., SIGCOMM CCR 2011). We model both as
//! prefix-scoped policies attached to gateway nodes: the *protected* side is
//! a set of prefixes, flows from protected to outside are remembered, and
//! inbound packets must match an established flow or an explicit allowance.

use crate::addr::Prefix;
use crate::packet::{IcmpMsg, Packet, Transport};
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A flow signature used for "established" tracking, direction-normalized
/// to (inside endpoint, outside endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowKey {
    inside: Ipv4Addr,
    outside: Ipv4Addr,
    /// UDP: (inside port, outside port); ICMP: (ident-derived, 0).
    ports: (u16, u16),
    proto: Proto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Proto {
    Udp,
    Icmp,
}

fn classify(packet: &Packet) -> (Proto, u16, u16) {
    match &packet.transport {
        Transport::Udp {
            src_port, dst_port, ..
        } => (Proto::Udp, *src_port, *dst_port),
        Transport::Icmp(icmp) => {
            let id = match icmp {
                IcmpMsg::EchoRequest { ident, .. } | IcmpMsg::EchoReply { ident, .. } => {
                    (*ident & 0xFFFF) as u16
                }
                // ICMP errors correlate via the original datagram, handled
                // by the firewall's error path.
                IcmpMsg::TimeExceeded { .. } | IcmpMsg::DestUnreachable { .. } => 0,
            };
            (Proto::Icmp, id, id)
        }
    }
}

/// Verdict from a firewall check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet.
    Accept,
    /// Silently drop it (cellular firewalls do not send errors).
    Drop,
}

/// A stateful, prefix-scoped firewall.
///
/// Packets travelling *out* of the protected prefixes establish flow state;
/// packets travelling *in* are accepted only when they match established
/// state or an explicit allowance. Packets not crossing the boundary are
/// always accepted.
#[derive(Debug, Clone)]
pub struct Firewall {
    protected: Vec<Prefix>,
    /// Addresses inside the protected range that may receive unsolicited
    /// ICMP echo (e.g. Verizon's externally pingable resolvers, Table 4).
    ping_allowed: Vec<Ipv4Addr>,
    flows: HashMap<FlowKey, SimTime>,
    flow_timeout: SimDuration,
    /// Packets dropped, for diagnostics and tests.
    pub drops: u64,
}

impl Firewall {
    /// A firewall protecting the given prefixes.
    pub fn new(protected: Vec<Prefix>) -> Self {
        Firewall {
            protected,
            ping_allowed: Vec::new(),
            flows: HashMap::new(),
            flow_timeout: SimDuration::from_secs(120),
            drops: 0,
        }
    }

    /// Permits unsolicited ICMP echo to an inside address.
    pub fn allow_ping_to(&mut self, addr: Ipv4Addr) {
        self.ping_allowed.push(addr);
    }

    /// Overrides the established-flow timeout.
    pub fn set_flow_timeout(&mut self, t: SimDuration) {
        self.flow_timeout = t;
    }

    fn inside(&self, addr: Ipv4Addr) -> bool {
        self.protected.iter().any(|p| p.contains(addr))
    }

    /// Inspects a packet transiting this node at time `now`.
    pub fn check(&mut self, packet: &Packet, now: SimTime) -> Verdict {
        let src_in = self.inside(packet.src);
        let dst_in = self.inside(packet.dst);
        let (proto, src_port, dst_port) = classify(packet);
        match (src_in, dst_in) {
            // Outbound: remember the flow.
            (true, false) => {
                self.flows.insert(
                    FlowKey {
                        inside: packet.src,
                        outside: packet.dst,
                        ports: (src_port, dst_port),
                        proto,
                    },
                    now,
                );
                Verdict::Accept
            }
            // Inbound: must match established state or an allowance.
            (false, true) => {
                // ICMP errors about an inside-originated packet are replies
                // to an established outbound flow.
                if let Transport::Icmp(
                    IcmpMsg::TimeExceeded { original } | IcmpMsg::DestUnreachable { original },
                ) = &packet.transport
                {
                    if self.inside(original.src) {
                        return Verdict::Accept;
                    }
                    self.drops += 1;
                    return Verdict::Drop;
                }
                let key = FlowKey {
                    inside: packet.dst,
                    outside: packet.src,
                    ports: (dst_port, src_port),
                    proto,
                };
                if let Some(&t) = self.flows.get(&key) {
                    if now.since(t) <= self.flow_timeout {
                        return Verdict::Accept;
                    }
                    self.flows.remove(&key);
                }
                if matches!(
                    packet.transport,
                    Transport::Icmp(IcmpMsg::EchoRequest { .. })
                ) && self.ping_allowed.contains(&packet.dst)
                {
                    return Verdict::Accept;
                }
                self.drops += 1;
                Verdict::Drop
            }
            // Not crossing the boundary.
            _ => Verdict::Accept,
        }
    }
}

/// Endpoint-independent NAT translating protected-side sources to a public
/// address with per-flow identifiers.
#[derive(Debug, Clone)]
pub struct Nat {
    inside: Vec<Prefix>,
    public_addr: Ipv4Addr,
    /// (proto, inside addr, inside id) -> public id
    out_map: HashMap<(Proto, Ipv4Addr, u16), u16>,
    /// public id -> (proto, inside addr, inside id)
    in_map: HashMap<(Proto, u16), (Ipv4Addr, u16)>,
    next_id: u16,
}

impl Nat {
    /// A NAT translating `inside` prefixes to `public_addr`.
    pub fn new(inside: Vec<Prefix>, public_addr: Ipv4Addr) -> Self {
        Nat {
            inside,
            public_addr,
            out_map: HashMap::new(),
            in_map: HashMap::new(),
            next_id: 20_000,
        }
    }

    /// The address translated flows appear to come from.
    pub fn public_addr(&self) -> Ipv4Addr {
        self.public_addr
    }

    fn is_inside(&self, addr: Ipv4Addr) -> bool {
        self.inside.iter().any(|p| p.contains(addr))
    }

    fn map_out(&mut self, proto: Proto, src: Ipv4Addr, id: u16) -> u16 {
        if let Some(&pub_id) = self.out_map.get(&(proto, src, id)) {
            return pub_id;
        }
        let pub_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(20_000);
        self.out_map.insert((proto, src, id), pub_id);
        self.in_map.insert((proto, pub_id), (src, id));
        pub_id
    }

    /// Translates a packet transiting this node. Returns `None` for inbound
    /// packets with no mapping (which the caller should drop).
    pub fn translate(&mut self, mut packet: Packet) -> Option<Packet> {
        let src_in = self.is_inside(packet.src);
        let to_public = packet.dst == self.public_addr;
        if src_in && !self.is_inside(packet.dst) {
            // Outbound: rewrite source.
            match &mut packet.transport {
                Transport::Udp { src_port, .. } => {
                    *src_port = self.map_out(Proto::Udp, packet.src, *src_port);
                }
                Transport::Icmp(IcmpMsg::EchoRequest { ident, seq: _ }) => {
                    let inside_id = (*ident & 0xFFFF) as u16;
                    let pub_id = self.map_out(Proto::Icmp, packet.src, inside_id);
                    *ident = (*ident & !0xFFFF) | pub_id as u64;
                }
                _ => {}
            }
            packet.src = self.public_addr;
            Some(packet)
        } else if to_public {
            // Inbound: restore the original destination.
            match &mut packet.transport {
                Transport::Udp { dst_port, .. } => {
                    let (orig_addr, orig_port) = *self.in_map.get(&(Proto::Udp, *dst_port))?;
                    packet.dst = orig_addr;
                    *dst_port = orig_port;
                    Some(packet)
                }
                Transport::Icmp(IcmpMsg::EchoReply { ident, .. }) => {
                    let pub_id = (*ident & 0xFFFF) as u16;
                    let (orig_addr, orig_id) = *self.in_map.get(&(Proto::Icmp, pub_id))?;
                    packet.dst = orig_addr;
                    *ident = (*ident & !0xFFFF) | orig_id as u64;
                    Some(packet)
                }
                Transport::Icmp(
                    IcmpMsg::TimeExceeded { original } | IcmpMsg::DestUnreachable { original },
                ) => {
                    // Errors about a translated outbound packet: match on
                    // the original's translated identifiers.
                    let (proto, pub_id) = match original.udp_ports {
                        Some((sp, _)) => (Proto::Udp, sp),
                        None => (Proto::Icmp, (original.ident & 0xFFFF) as u16),
                    };
                    let (orig_addr, orig_id) = *self.in_map.get(&(proto, pub_id))?;
                    packet.dst = orig_addr;
                    original.src = orig_addr;
                    match (&mut original.udp_ports, proto) {
                        (Some((sp, _)), Proto::Udp) => *sp = orig_id,
                        _ => original.ident = orig_id as u64,
                    }
                    Some(packet)
                }
                _ => None,
            }
        } else {
            // Not crossing this NAT.
            Some(packet)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn carrier_prefix() -> Prefix {
        "10.0.0.0/8".parse().unwrap()
    }

    #[test]
    fn firewall_allows_outbound_then_matching_inbound() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        let t0 = SimTime::ZERO;
        let out = Packet::udp(ip(10, 1, 1, 1), 5000, ip(8, 8, 8, 8), 53, vec![]);
        assert_eq!(fw.check(&out, t0), Verdict::Accept);
        let back = Packet::udp(ip(8, 8, 8, 8), 53, ip(10, 1, 1, 1), 5000, vec![]);
        assert_eq!(
            fw.check(&back, t0 + SimDuration::from_secs(1)),
            Verdict::Accept
        );
    }

    #[test]
    fn firewall_drops_unsolicited_inbound() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        let probe = Packet::echo_request(ip(203, 0, 113, 5), ip(10, 1, 1, 1), 9, 0);
        assert_eq!(fw.check(&probe, SimTime::ZERO), Verdict::Drop);
        assert_eq!(fw.drops, 1);
        let dgram = Packet::udp(ip(203, 0, 113, 5), 4000, ip(10, 1, 1, 1), 53, vec![]);
        assert_eq!(fw.check(&dgram, SimTime::ZERO), Verdict::Drop);
    }

    #[test]
    fn firewall_flow_state_expires() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        fw.set_flow_timeout(SimDuration::from_secs(10));
        let out = Packet::udp(ip(10, 1, 1, 1), 5000, ip(8, 8, 8, 8), 53, vec![]);
        fw.check(&out, SimTime::ZERO);
        let back = Packet::udp(ip(8, 8, 8, 8), 53, ip(10, 1, 1, 1), 5000, vec![]);
        let late = SimTime::ZERO + SimDuration::from_secs(11);
        assert_eq!(fw.check(&back, late), Verdict::Drop);
    }

    #[test]
    fn firewall_ping_allowlist() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        fw.allow_ping_to(ip(10, 9, 9, 9));
        let ok = Packet::echo_request(ip(203, 0, 113, 5), ip(10, 9, 9, 9), 1, 0);
        assert_eq!(fw.check(&ok, SimTime::ZERO), Verdict::Accept);
        let not_ok = Packet::echo_request(ip(203, 0, 113, 5), ip(10, 9, 9, 8), 1, 0);
        assert_eq!(fw.check(&not_ok, SimTime::ZERO), Verdict::Drop);
    }

    #[test]
    fn firewall_admits_icmp_errors_for_inside_probes() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        let original = Packet::echo_request(ip(10, 1, 1, 1), ip(203, 0, 113, 9), 4, 1).probe_key();
        let err = Packet {
            src: ip(198, 51, 100, 1),
            dst: ip(10, 1, 1, 1),
            ttl: 60,
            transport: Transport::Icmp(IcmpMsg::TimeExceeded { original }),
        };
        assert_eq!(fw.check(&err, SimTime::ZERO), Verdict::Accept);
    }

    #[test]
    fn firewall_ignores_internal_traffic() {
        let mut fw = Firewall::new(vec![carrier_prefix()]);
        let p = Packet::udp(ip(10, 1, 1, 1), 1, ip(10, 2, 2, 2), 2, vec![]);
        assert_eq!(fw.check(&p, SimTime::ZERO), Verdict::Accept);
    }

    #[test]
    fn nat_translates_udp_both_ways() {
        let mut nat = Nat::new(vec![carrier_prefix()], ip(66, 174, 1, 1));
        let out = Packet::udp(ip(10, 1, 1, 1), 5000, ip(8, 8, 8, 8), 53, vec![7]);
        let xlated = nat.translate(out).unwrap();
        assert_eq!(xlated.src, ip(66, 174, 1, 1));
        let pub_port = match xlated.transport {
            Transport::Udp { src_port, .. } => src_port,
            _ => unreachable!(),
        };
        assert_ne!(pub_port, 5000);
        let back = Packet::udp(ip(8, 8, 8, 8), 53, ip(66, 174, 1, 1), pub_port, vec![8]);
        let restored = nat.translate(back).unwrap();
        assert_eq!(restored.dst, ip(10, 1, 1, 1));
        match restored.transport {
            Transport::Udp { dst_port, .. } => assert_eq!(dst_port, 5000),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nat_translates_icmp_echo() {
        let mut nat = Nat::new(vec![carrier_prefix()], ip(66, 174, 1, 1));
        let out = Packet::echo_request(ip(10, 1, 1, 1), ip(8, 8, 4, 4), 0xABCD, 2);
        let xlated = nat.translate(out).unwrap();
        let pub_ident = match xlated.transport {
            Transport::Icmp(IcmpMsg::EchoRequest { ident, .. }) => ident,
            _ => unreachable!(),
        };
        let back = Packet {
            src: ip(8, 8, 4, 4),
            dst: ip(66, 174, 1, 1),
            ttl: 64,
            transport: Transport::Icmp(IcmpMsg::EchoReply {
                ident: pub_ident,
                seq: 2,
            }),
        };
        let restored = nat.translate(back).unwrap();
        assert_eq!(restored.dst, ip(10, 1, 1, 1));
        match restored.transport {
            Transport::Icmp(IcmpMsg::EchoReply { ident, .. }) => {
                assert_eq!(ident & 0xFFFF, 0xABCD)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nat_drops_unmapped_inbound() {
        let mut nat = Nat::new(vec![carrier_prefix()], ip(66, 174, 1, 1));
        let stray = Packet::udp(ip(8, 8, 8, 8), 53, ip(66, 174, 1, 1), 31337, vec![]);
        assert!(nat.translate(stray).is_none());
    }

    #[test]
    fn nat_mapping_is_stable_per_flow() {
        let mut nat = Nat::new(vec![carrier_prefix()], ip(66, 174, 1, 1));
        let p1 = Packet::udp(ip(10, 1, 1, 1), 5000, ip(8, 8, 8, 8), 53, vec![]);
        let p2 = Packet::udp(ip(10, 1, 1, 1), 5000, ip(9, 9, 9, 9), 53, vec![]);
        let a = nat.translate(p1).unwrap();
        let b = nat.translate(p2).unwrap();
        let (pa, pb) = match (a.transport, b.transport) {
            (Transport::Udp { src_port: x, .. }, Transport::Udp { src_port: y, .. }) => (x, y),
            _ => unreachable!(),
        };
        // Endpoint-independent: same inside (addr, port) keeps one mapping.
        assert_eq!(pa, pb);
    }

    #[test]
    fn nat_passes_unrelated_traffic() {
        let mut nat = Nat::new(vec![carrier_prefix()], ip(66, 174, 1, 1));
        let p = Packet::udp(ip(203, 0, 113, 1), 1, ip(198, 51, 100, 2), 2, vec![]);
        assert!(nat.translate(p.clone()).unwrap() == p);
    }
}
