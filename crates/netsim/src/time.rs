//! Simulated time: microsecond-resolution instants and durations.
//!
//! Simulation time is totally ordered and only advances when the event
//! engine dispatches events, which keeps every run bit-reproducible from a
//! seed.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A simulated instant, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A simulated duration, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration since an earlier instant; saturates at zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Builds a duration from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Builds a duration from days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds (the unit every figure in the paper uses).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whole seconds, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let days = total_secs / 86_400;
        let hours = (total_secs % 86_400) / 3_600;
        let mins = (total_secs % 3_600) / 60;
        let secs = total_secs % 60;
        write!(f, "d{days}+{hours:02}:{mins:02}:{secs:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(1_000);
        let t2 = t + SimDuration::from_millis(2);
        assert_eq!(t2.as_micros(), 3_000);
        assert_eq!((t2 - t).as_millis_f64(), 2.0);
        assert_eq!(t2.since(t), SimDuration::from_millis(2));
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(750).to_string(), "750us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_hours(25)).to_string(),
            "d1+01:00:00"
        );
    }

    #[test]
    fn scaling_ops() {
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10) / 2,
            SimDuration::from_millis(5)
        );
    }
}
