//! High-level probing drivers built on the transaction API: multi-probe
//! ping, traceroute, and an HTTP-lite GET matching the paper's
//! time-to-first-byte measurements.

use crate::engine::{Egress, FlowResult, Network, ServiceCtx, UdpService};
use crate::time::{SimDuration, SimTime};
use crate::topo::NodeId;
use std::net::Ipv4Addr;

/// Default per-probe timeout used by the measurement suite.
pub const PROBE_TIMEOUT: SimDuration = SimDuration::from_secs(3);

/// Result of a ping train.
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    /// Target address.
    pub target: Ipv4Addr,
    /// RTT of each answered probe.
    pub rtts: Vec<SimDuration>,
    /// Probes sent.
    pub sent: u32,
}

impl PingReport {
    /// Whether any probe was answered.
    pub fn reachable(&self) -> bool {
        !self.rtts.is_empty()
    }

    /// Minimum RTT (the usual latency estimator), if any probe answered.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().copied().min()
    }

    /// Mean RTT across answered probes.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        if self.rtts.is_empty() {
            return None;
        }
        let total: u64 = self.rtts.iter().map(|r| r.as_micros()).sum();
        Some(SimDuration::from_micros(total / self.rtts.len() as u64))
    }

    /// Fraction of probes lost.
    pub fn loss(&self) -> f64 {
        1.0 - self.rtts.len() as f64 / self.sent.max(1) as f64
    }
}

/// One hop of a traceroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHop {
    /// TTL used for the probe.
    pub ttl: u8,
    /// Responding address, or `None` for a silent hop (`* * *`).
    pub addr: Option<Ipv4Addr>,
    /// RTT when answered.
    pub rtt: Option<SimDuration>,
}

/// A complete traceroute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Target address.
    pub target: Ipv4Addr,
    /// Hops in TTL order; stops after the destination answers or `max_ttl`.
    pub hops: Vec<TraceHop>,
    /// Whether the destination itself answered.
    pub reached: bool,
}

impl TraceReport {
    /// Addresses of responding hops, in order.
    pub fn responding_hops(&self) -> Vec<Ipv4Addr> {
        self.hops.iter().filter_map(|h| h.addr).collect()
    }
}

/// Result of an HTTP-lite GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReport {
    /// Server address.
    pub server: Ipv4Addr,
    /// Time to first byte (connection setup + request/response), or `None`
    /// if the exchange failed.
    pub ttfb: Option<SimDuration>,
}

impl Network {
    /// Sends `count` sequential echo probes and collects RTTs.
    pub fn ping_train(&mut self, node: NodeId, target: Ipv4Addr, count: u32) -> PingReport {
        let mut rtts = Vec::new();
        for _ in 0..count {
            let flow = self.ping(node, target, PROBE_TIMEOUT);
            let out = self.run_until(flow);
            if matches!(out.result, FlowResult::EchoReply { .. }) {
                rtts.push(out.rtt());
            }
        }
        PingReport {
            target,
            rtts,
            sent: count,
        }
    }

    /// Classic UDP traceroute: TTL-limited datagrams to high ports.
    /// Intermediate routers answer with TimeExceeded; the destination
    /// answers with port-unreachable. Using UDP (as the traceroute tool
    /// does) matters here: cellular firewalls that allowlist ICMP echo to a
    /// resolver still drop UDP probes, which is how Table 4's traceroute
    /// column comes out all-zero.
    pub fn traceroute(&mut self, node: NodeId, target: Ipv4Addr, max_ttl: u8) -> TraceReport {
        let mut hops = Vec::new();
        let mut reached = false;
        for ttl in 1..=max_ttl {
            let flow = self.udp_probe_ttl(
                node,
                target,
                TRACEROUTE_BASE_PORT + ttl as u16,
                ttl,
                PROBE_TIMEOUT,
            );
            let out = self.run_until(flow);
            match out.result {
                FlowResult::TimeExceeded { from } => {
                    hops.push(TraceHop {
                        ttl,
                        addr: Some(from),
                        rtt: Some(out.rtt()),
                    });
                }
                FlowResult::Unreachable { from } | FlowResult::EchoReply { from } => {
                    hops.push(TraceHop {
                        ttl,
                        addr: Some(from),
                        rtt: Some(out.rtt()),
                    });
                    reached = from == target;
                    break;
                }
                FlowResult::Response { from, .. } => {
                    // A service actually answered the probe datagram.
                    hops.push(TraceHop {
                        ttl,
                        addr: Some(from),
                        rtt: Some(out.rtt()),
                    });
                    reached = from == target;
                    break;
                }
                // `Unknown` cannot occur for a flow created just above, but
                // a silent hop is the honest rendering if it ever does.
                FlowResult::TimedOut | FlowResult::Unknown => {
                    hops.push(TraceHop {
                        ttl,
                        addr: None,
                        rtt: None,
                    });
                }
            }
        }
        TraceReport {
            target,
            hops,
            reached,
        }
    }

    /// HTTP-lite GET: a connection-setup exchange followed by the request
    /// itself, so TTFB costs two round trips plus server time — the shape of
    /// TCP-based time-to-first-byte the paper measures.
    pub fn http_get(&mut self, node: NodeId, server: Ipv4Addr, path: &str) -> HttpReport {
        let start = self.now();
        let syn = self.udp_request(node, server, HTTP_PORT, b"SYN".to_vec(), PROBE_TIMEOUT);
        let syn_out = self.run_until(syn);
        if !matches!(syn_out.result, FlowResult::Response { .. }) {
            return HttpReport { server, ttfb: None };
        }
        let req = format!("GET {path}");
        let get = self.udp_request(node, server, HTTP_PORT, req.into_bytes(), PROBE_TIMEOUT);
        let get_out = self.run_until(get);
        match get_out.result {
            FlowResult::Response { .. } => HttpReport {
                server,
                ttfb: Some(self.now().since(start)),
            },
            _ => HttpReport { server, ttfb: None },
        }
    }
}

/// Well-known HTTP port for the HTTP-lite service.
pub const HTTP_PORT: u16 = 80;

/// Base destination port for UDP traceroute probes (the traceroute tool's
/// classic 33434).
pub const TRACEROUTE_BASE_PORT: u16 = 33_434;

/// A minimal HTTP-lite origin/replica server: acknowledges connection setup
/// immediately and serves GETs after a configurable service time.
#[derive(Debug)]
pub struct HttpLiteServer {
    /// Server processing time added to GET responses.
    pub service_time: SimDuration,
    /// Requests served (diagnostics).
    pub hits: u64,
}

impl HttpLiteServer {
    /// A server with the given processing time.
    pub fn new(service_time: SimDuration) -> Self {
        HttpLiteServer {
            service_time,
            hits: 0,
        }
    }
}

impl UdpService for HttpLiteServer {
    fn handle(
        &mut self,
        _ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress> {
        if payload == b"SYN" {
            return vec![Egress::reply(
                from,
                from_port,
                b"SYN-ACK".to_vec(),
                SimDuration::ZERO,
            )];
        }
        if payload.starts_with(b"GET ") {
            self.hits += 1;
            return vec![Egress::reply(
                from,
                from_port,
                b"200 OK".to_vec(),
                self.service_time,
            )];
        }
        Vec::new()
    }
}

/// Result of a TCP-lite HTTP GET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpGetReport {
    /// Whether the full page arrived.
    pub success: bool,
    /// Time to first response byte (handshake + request + think time).
    pub ttfb: Option<SimDuration>,
    /// Total fetch time.
    pub total: Option<SimDuration>,
    /// Bytes received.
    pub bytes: usize,
}

impl Network {
    /// Fetches a page over TCP-lite: a real three-way handshake, request,
    /// segmented response with retransmission, and FIN teardown. This is
    /// the transfer the measurement suite's TTFB numbers come from.
    pub fn tcp_get(
        &mut self,
        node: NodeId,
        server: Ipv4Addr,
        path: &str,
        timeout: SimDuration,
    ) -> TcpGetReport {
        use crate::tcplite::TcpFetch;
        let start = self.now();
        let port = self.alloc_client_port(node);
        let fetch = TcpFetch::new(server, HTTP_PORT, format!("GET {path}").into_bytes());
        self.register_service(node, port, Box::new(fetch));
        self.kick_service(node, port);
        let deadline = start + timeout;
        let outcome = loop {
            if let Some(f) = self.service_as::<TcpFetch>(node, port) {
                if let Some(o) = f.outcome {
                    break Some(o);
                }
            }
            if self.now() > deadline || !self.step() {
                break None;
            }
        };
        self.unregister_service(node, port);
        match outcome {
            Some(o) if o.success => TcpGetReport {
                success: true,
                ttfb: o.first_byte_at.map(|t| t.since(start)),
                total: o.done_at.map(|t| t.since(start)),
                bytes: o.bytes,
            },
            Some(o) => TcpGetReport {
                success: false,
                ttfb: o.first_byte_at.map(|t| t.since(start)),
                total: None,
                bytes: o.bytes,
            },
            None => TcpGetReport {
                success: false,
                ttfb: None,
                total: None,
                bytes: 0,
            },
        }
    }
}

/// Time helper re-exported for drivers that pace their own probes.
pub fn deadline(now: SimTime, timeout: SimDuration) -> SimTime {
    now + timeout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::topo::{Asn, Coord, NodeKind, Topology};

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn network() -> (Network, NodeId, Ipv4Addr) {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let r1 = t.add_node(
            "r1",
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let r2 = t.add_node(
            "r2",
            NodeKind::Router,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 0, 3)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Host,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 0, 4)],
        );
        t.add_link(a, r1, LatencyModel::constant_ms(2));
        t.add_link(r1, r2, LatencyModel::constant_ms(3));
        t.add_link(r2, b, LatencyModel::constant_ms(2));
        let mut net = Network::new(t, 99);
        net.register_service(
            b,
            HTTP_PORT,
            Box::new(HttpLiteServer::new(SimDuration::from_millis(5))),
        );
        (net, a, ip(10, 0, 0, 4))
    }

    #[test]
    fn ping_train_collects_rtts() {
        let (mut net, a, target) = network();
        let report = net.ping_train(a, target, 3);
        assert_eq!(report.sent, 3);
        assert_eq!(report.rtts.len(), 3);
        assert!(report.reachable());
        assert_eq!(report.loss(), 0.0);
        assert!(report.min_rtt().unwrap() <= report.mean_rtt().unwrap());
        // 2*(2+3+2)=14ms nominal
        let m = report.min_rtt().unwrap().as_millis_f64();
        assert!((14.0..15.0).contains(&m), "min rtt {m}");
    }

    #[test]
    fn traceroute_walks_the_path() {
        let (mut net, a, target) = network();
        let report = net.traceroute(a, target, 16);
        assert!(report.reached);
        assert_eq!(
            report.responding_hops(),
            vec![ip(10, 0, 0, 2), ip(10, 0, 0, 3), ip(10, 0, 0, 4)]
        );
        // RTTs increase monotonically with constant-latency links.
        let rtts: Vec<_> = report.hops.iter().filter_map(|h| h.rtt).collect();
        assert!(rtts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn http_get_ttfb_is_two_rtts_plus_service() {
        let (mut net, a, target) = network();
        let report = net.http_get(a, target, "/index.html");
        // 2 RTTs (28 ms) + 5 ms service, plus proc delays.
        let ttfb = report.ttfb.expect("served").as_millis_f64();
        assert!((33.0..36.0).contains(&ttfb), "ttfb {ttfb}");
    }

    #[test]
    fn http_get_fails_cleanly_without_server() {
        let (mut net, a, _) = network();
        let report = net.http_get(a, ip(10, 0, 0, 3), "/");
        assert!(report.ttfb.is_none());
    }

    #[test]
    fn ping_unreachable_target_reports_loss() {
        let (mut net, a, _) = network();
        let report = net.ping_train(a, ip(203, 0, 113, 1), 2);
        assert!(!report.reachable());
        assert_eq!(report.loss(), 1.0);
        assert!(report.min_rtt().is_none());
        assert!(report.mean_rtt().is_none());
    }
}
