//! The discrete-event engine: event queue, hop-by-hop forwarding,
//! middlebox traversal, service dispatch, and client transaction tracking.
//!
//! Following the event-driven design the guides recommend, every protocol
//! endpoint is a state machine ([`UdpService`]) that reacts to datagrams and
//! returns egress actions; the engine owns all shared state, so there is no
//! interior mutability on the hot path and runs are bit-deterministic from
//! the seed.

use crate::packet::{IcmpMsg, Packet, ProbeKey, Transport};
use crate::queue::{Event, EventQueue, QueueKind};
use crate::route::RouteTable;
use crate::time::{SimDuration, SimTime};
use crate::topo::{NodeId, NodeKind, Topology};
use crate::trace::{TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Identifier of a client transaction (an outstanding probe or request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Result of a completed client transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowResult {
    /// A UDP response arrived.
    Response {
        /// Address the response came from.
        from: Ipv4Addr,
        /// Response payload.
        payload: Vec<u8>,
    },
    /// An ICMP echo reply arrived.
    EchoReply {
        /// Address the reply came from.
        from: Ipv4Addr,
    },
    /// An ICMP time-exceeded arrived (traceroute hop discovery).
    TimeExceeded {
        /// Router that reported the expiry.
        from: Ipv4Addr,
    },
    /// An ICMP destination-unreachable arrived.
    Unreachable {
        /// Node that reported it.
        from: Ipv4Addr,
    },
    /// No answer before the deadline.
    TimedOut,
    /// The engine was asked about a flow it is not tracking (already
    /// polled, or a foreign id). Distinguished from [`FlowResult::TimedOut`]
    /// so drivers cannot mistake a bookkeeping error for a real timeout.
    Unknown,
}

/// A completed transaction with timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowOutcome {
    /// When the request left the client.
    pub sent_at: SimTime,
    /// When the completion was recorded.
    pub completed_at: SimTime,
    /// What happened.
    pub result: FlowResult,
}

impl FlowOutcome {
    /// Round-trip time (completion minus send).
    pub fn rtt(&self) -> SimDuration {
        self.completed_at.since(self.sent_at)
    }

    /// Whether the flow produced any answer at all.
    pub fn answered(&self) -> bool {
        !matches!(self.result, FlowResult::TimedOut | FlowResult::Unknown)
    }
}

/// Outgoing datagram requested by a service.
#[derive(Debug, Clone)]
pub struct Egress {
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Extra processing delay before the datagram leaves the node.
    pub delay: SimDuration,
    /// Source address override. `None` sends from the address the service
    /// was queried on; public-DNS sites use this to recurse from their
    /// per-site egress address rather than the anycast VIP.
    pub src_addr: Option<Ipv4Addr>,
}

impl Egress {
    /// A reply to the datagram's sender, from the queried address.
    pub fn reply(dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>, delay: SimDuration) -> Self {
        Egress {
            dst,
            dst_port,
            payload,
            delay,
            src_addr: None,
        }
    }

    /// Sets the source address override.
    pub fn from_addr(mut self, src: Ipv4Addr) -> Self {
        self.src_addr = Some(src);
        self
    }
}

/// Context handed to a service while it processes a datagram or a timer
/// tick.
pub struct ServiceCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The local address the datagram was addressed to (matters for
    /// anycast: the service sees which identity was queried). For timer
    /// ticks this is the node's primary address.
    pub local_addr: Ipv4Addr,
    /// Deterministic RNG shared by the whole simulation.
    pub rng: &'a mut StdRng,
    /// Set by the service to request a [`UdpService::tick`] callback after
    /// this duration (smoltcp-style `poll_at`). The engine reads it after
    /// each `handle`/`tick` call.
    pub wake_after: Option<SimDuration>,
}

/// A UDP protocol endpoint (DNS server, resolver, HTTP-lite server, …).
///
/// All datagrams addressed to the service's port are delivered to
/// [`UdpService::handle`], *including responses to queries the service sent
/// upstream from that same port* — services are full state machines.
///
/// Services are `Send` so whole engines (and the services they own) can be
/// moved across threads — the measurement campaign runs one engine per
/// carrier shard on a scoped thread pool.
pub trait UdpService: Send {
    /// Processes one datagram and returns any datagrams to send.
    fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        payload: &[u8],
    ) -> Vec<Egress>;

    /// Timer callback, fired when the service requested a wake-up via
    /// [`ServiceCtx::wake_after`]. Default: do nothing.
    fn tick(&mut self, ctx: &mut ServiceCtx<'_>) -> Vec<Egress> {
        let _ = ctx;
        Vec::new()
    }

    /// Downcast hook so drivers can inspect a registered service's state
    /// (e.g. a TCP-lite fetch in progress). Default: not inspectable.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Counters describing what the network did; used by tests and diagnostics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Events dispatched.
    pub events: u64,
    /// Hop-by-hop forwards performed.
    pub forwards: u64,
    /// Local deliveries.
    pub delivered: u64,
    /// Packets dropped by a firewall.
    pub firewall_drops: u64,
    /// Inbound packets dropped for missing NAT state.
    pub nat_drops: u64,
    /// Packets that expired in transit.
    pub ttl_expired: u64,
    /// Packets with no route or no owner.
    pub unreachable: u64,
    /// Client transactions that timed out.
    pub timeouts: u64,
    /// Packets lost on lossy links.
    pub link_losses: u64,
    /// Packets dropped by an installed fault plan (chaos loss + outages).
    pub fault_drops: u64,
    /// `Arrive` events dispatched.
    pub arrives: u64,
    /// `Send` events dispatched.
    pub sends: u64,
    /// `ServiceTick` events dispatched.
    pub service_ticks: u64,
    /// `FlowTimeout` events that actually fired (the flow's deadline was
    /// reached before it was cancelled; compare `timeouts`, which counts
    /// only the subset where the flow was still pending).
    pub flow_timeouts: u64,
    /// `FlowTimeout` events cancelled before firing because their flow
    /// completed early; these are reaped from the queue undispatched.
    pub flow_timeouts_cancelled: u64,
    /// Deepest the event queue ever got (live scheduled-but-undispatched
    /// events; cancelled events stop counting at cancellation).
    pub queue_high_water: u64,
}

impl NetStats {
    /// Folds every counter into an [`obs::Registry`], labelled with
    /// `labels` (typically the owning shard's carrier). Counter names are
    /// the `net.*` family; the queue high-water lands in a gauge.
    pub fn export(&self, reg: &mut obs::Registry, labels: &[(&'static str, &str)]) {
        reg.inc_by("net.events", labels, self.events);
        reg.inc_by("net.forwards", labels, self.forwards);
        reg.inc_by("net.delivered", labels, self.delivered);
        reg.inc_by("net.timeouts", labels, self.timeouts);
        let by_kind: [(&str, u64); 4] = [
            ("arrive", self.arrives),
            ("send", self.sends),
            ("service_tick", self.service_ticks),
            ("flow_timeout", self.flow_timeouts),
        ];
        for (kind, n) in by_kind {
            let mut kl: Vec<(&'static str, &str)> = labels.to_vec();
            kl.push(("kind", kind));
            reg.inc_by("net.events_by_kind", &kl, n);
        }
        // The fired/cancelled split: `net.flow_timeouts` counts deadline
        // events that actually dispatched, `net.flow_timeouts_cancelled`
        // the ones reaped from the queue because their flow completed
        // first. Their sum is every timeout ever scheduled.
        reg.inc_by("net.flow_timeouts", labels, self.flow_timeouts);
        reg.inc_by(
            "net.flow_timeouts_cancelled",
            labels,
            self.flow_timeouts_cancelled,
        );
        let by_cause: [(&str, u64); 6] = [
            ("firewall", self.firewall_drops),
            ("nat", self.nat_drops),
            ("ttl_expired", self.ttl_expired),
            ("unreachable", self.unreachable),
            ("link_loss", self.link_losses),
            ("fault", self.fault_drops),
        ];
        for (cause, n) in by_cause {
            let mut cl: Vec<(&'static str, &str)> = labels.to_vec();
            cl.push(("cause", cause));
            reg.inc_by("net.drops_by_cause", &cl, n);
        }
        reg.gauge_set("net.queue_depth", labels, self.queue_high_water);
    }
}

#[derive(Debug)]
enum EventKind {
    /// A packet arriving at a node from the network: full middlebox
    /// processing and TTL handling applies.
    Arrive {
        node: NodeId,
        packet: Packet,
    },
    /// A packet originated by the node itself: no TTL decrement and no
    /// middlebox traversal at the origin (hosts do not firewall themselves).
    Send {
        node: NodeId,
        packet: Packet,
    },
    /// Timer tick requested by a service.
    ServiceTick {
        node: NodeId,
        port: u16,
    },
    FlowTimeout {
        flow: FlowId,
    },
}

#[derive(Debug)]
struct Pending {
    node: NodeId,
    sent_at: SimTime,
    /// Demux keys to clean up on completion.
    port: Option<u16>,
    ident: Option<u64>,
    /// Seq of this flow's scheduled `FlowTimeout` event, cancelled when the
    /// flow completes before its deadline.
    timeout_seq: u64,
}

/// Per-hop forwarding/processing delay added on top of link latency.
const NODE_PROC_DELAY: SimDuration = SimDuration::from_micros(50);

/// Ephemeral port range for client transactions.
const EPHEMERAL_LO: u16 = 32_768;
const EPHEMERAL_HI: u16 = 60_999;

/// The simulated network: topology + routes + services + event queue.
pub struct Network {
    topo: Topology,
    routes: RouteTable,
    anycast: HashMap<Ipv4Addr, Vec<NodeId>>,
    services: HashMap<(NodeId, u16), Box<dyn UdpService>>,
    queue: Box<dyn EventQueue<EventKind>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    pending: HashMap<FlowId, Pending>,
    port_index: HashMap<(NodeId, u16), FlowId>,
    ident_index: HashMap<u64, FlowId>,
    /// Completed-but-unpolled outcomes. BTree so the drain API returns in
    /// flow order; bounded by callers via [`Network::take_completed_before`].
    completed: BTreeMap<FlowId, FlowOutcome>,
    next_flow: u64,
    next_port: u16,
    /// Per (link, direction) transmit-queue occupancy: when the link is
    /// next free. Only consulted for capacity-limited links.
    link_busy_until: Vec<[SimTime; 2]>,
    /// Optional fault-injection plan with its own RNG lane; `None` costs
    /// nothing and leaves the engine stream untouched.
    fault: Option<crate::fault::FaultPlan>,
    /// Activity counters.
    pub stats: NetStats,
    /// Optional packet tracer (disabled by default).
    pub tracer: Tracer,
}

impl Network {
    /// Wraps a finished topology; routes are computed immediately. Uses the
    /// default event queue ([`QueueKind::Wheel`]).
    pub fn new(topo: Topology, seed: u64) -> Self {
        Self::new_with_queue(topo, seed, QueueKind::default())
    }

    /// Like [`Network::new`], with an explicit event-queue implementation.
    /// All queue kinds dispatch in the same `(time, seq)` order, so outputs
    /// are byte-identical across them (checked by `tests/determinism.rs`).
    pub fn new_with_queue(topo: Topology, seed: u64, queue: QueueKind) -> Self {
        let routes = RouteTable::build(&topo);
        let link_busy_until = vec![[SimTime::ZERO; 2]; topo.links().len()];
        Network {
            topo,
            routes,
            anycast: HashMap::new(),
            services: HashMap::new(),
            queue: queue.build(),
            seq: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            pending: HashMap::new(),
            port_index: HashMap::new(),
            ident_index: HashMap::new(),
            completed: BTreeMap::new(),
            next_flow: 1,
            next_port: EPHEMERAL_LO,
            link_busy_until,
            fault: None,
            stats: NetStats::default(),
            tracer: Tracer::new(),
        }
    }

    /// Which event-queue implementation this engine dispatches from.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Installs a fault-injection plan. The plan draws from its own seed
    /// lane, so runs without one are byte-identical to builds without the
    /// fault subsystem at all.
    pub fn install_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        self.fault = Some(plan);
    }

    /// The installed fault plan, if any (for stats inspection).
    pub fn fault_plan(&self) -> Option<&crate::fault::FaultPlan> {
        self.fault.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the topology. Changing the *shape* (nodes/links)
    /// requires [`Network::rebuild_routes`]; retuning latency models does
    /// not.
    pub fn topo_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Recomputes the route table after structural topology changes.
    pub fn rebuild_routes(&mut self) {
        self.routes = RouteTable::build(&self.topo);
    }

    /// Read access to the route table.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// The deterministic RNG (for layers above that need randomness in the
    /// same stream).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Declares `addr` an anycast address served by `instances`. Each
    /// router forwards toward its nearest instance, as BGP anycast would.
    pub fn add_anycast(&mut self, addr: Ipv4Addr, instances: Vec<NodeId>) {
        assert!(
            self.topo.owner_of(addr).is_none(),
            "{addr} already unicast-owned"
        );
        assert!(!instances.is_empty(), "anycast {addr} with no instances");
        self.anycast.insert(addr, instances);
    }

    /// Registers a service on `(node, port)`.
    pub fn register_service(&mut self, node: NodeId, port: u16, service: Box<dyn UdpService>) {
        let prior = self.services.insert((node, port), service);
        assert!(prior.is_none(), "duplicate service on {node:?}:{port}");
    }

    /// Removes a service, returning it.
    pub fn unregister_service(&mut self, node: NodeId, port: u16) -> Option<Box<dyn UdpService>> {
        self.services.remove(&(node, port))
    }

    /// Schedules an immediate [`UdpService::tick`] for a service (used to
    /// start client-side state machines such as TCP-lite fetches).
    pub fn kick_service(&mut self, node: NodeId, port: u16) {
        self.schedule(self.now, EventKind::ServiceTick { node, port });
    }

    /// Inspects a registered service's concrete state via its
    /// [`UdpService::as_any`] hook.
    pub fn service_as<T: 'static>(&self, node: NodeId, port: u16) -> Option<&T> {
        self.services
            .get(&(node, port))?
            .as_any()?
            .downcast_ref::<T>()
    }

    /// Allocates an ephemeral port with no service and no pending
    /// transaction on `node` (for client-side service state machines).
    pub fn alloc_client_port(&mut self, node: NodeId) -> u16 {
        self.alloc_port(node)
    }

    /// Enqueues an event and returns its seq (the cancellation handle).
    fn schedule(&mut self, at: SimTime, kind: EventKind) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event {
            time: at.max(self.now),
            seq,
            kind,
        });
        self.stats.queue_high_water = self.stats.queue_high_water.max(self.queue.len() as u64);
        seq
    }

    fn alloc_flow(&mut self) -> FlowId {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        id
    }

    fn alloc_port(&mut self, node: NodeId) -> u16 {
        // Skip ports with an outstanding transaction or a registered
        // service on this node.
        for _ in 0..=(EPHEMERAL_HI - EPHEMERAL_LO) {
            let p = self.next_port;
            self.next_port = if p >= EPHEMERAL_HI {
                EPHEMERAL_LO
            } else {
                p + 1
            };
            if !self.port_index.contains_key(&(node, p)) && !self.services.contains_key(&(node, p))
            {
                return p;
            }
        }
        // detlint: allow(D4) -- exhausting the full 16k-port ephemeral range
        // on one node means the driver leaked flows; continuing would hand
        // out a duplicate port and silently corrupt transaction matching.
        panic!("ephemeral ports exhausted on {node:?}");
    }

    /// Sends a UDP request from `node` and tracks it as a transaction.
    pub fn udp_request(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Vec<u8>,
        timeout: SimDuration,
    ) -> FlowId {
        let flow = self.alloc_flow();
        let src_port = self.alloc_port(node);
        let src = self.topo.node(node).primary_addr();
        let packet = Packet::udp(src, src_port, dst, dst_port, payload);
        self.port_index.insert((node, src_port), flow);
        self.schedule(self.now, EventKind::Send { node, packet });
        let timeout_seq = self.schedule(self.now + timeout, EventKind::FlowTimeout { flow });
        self.pending.insert(
            flow,
            Pending {
                node,
                sent_at: self.now,
                port: Some(src_port),
                ident: None,
                timeout_seq,
            },
        );
        flow
    }

    /// Sends a TTL-limited UDP probe (one traceroute step) from `node`.
    pub fn udp_probe_ttl(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        dst_port: u16,
        ttl: u8,
        timeout: SimDuration,
    ) -> FlowId {
        let flow = self.alloc_flow();
        let src_port = self.alloc_port(node);
        let src = self.topo.node(node).primary_addr();
        let mut packet = Packet::udp(src, src_port, dst, dst_port, b"probe".to_vec());
        packet.ttl = ttl;
        self.port_index.insert((node, src_port), flow);
        self.schedule(self.now, EventKind::Send { node, packet });
        let timeout_seq = self.schedule(self.now + timeout, EventKind::FlowTimeout { flow });
        self.pending.insert(
            flow,
            Pending {
                node,
                sent_at: self.now,
                port: Some(src_port),
                ident: None,
                timeout_seq,
            },
        );
        flow
    }

    /// Sends an ICMP echo request (one ping probe) from `node`.
    pub fn ping(&mut self, node: NodeId, dst: Ipv4Addr, timeout: SimDuration) -> FlowId {
        self.probe_ttl(node, dst, crate::packet::DEFAULT_TTL, timeout)
    }

    /// Sends an ICMP echo request with an explicit TTL (traceroute probe).
    pub fn probe_ttl(
        &mut self,
        node: NodeId,
        dst: Ipv4Addr,
        ttl: u8,
        timeout: SimDuration,
    ) -> FlowId {
        let flow = self.alloc_flow();
        // Upper 48 bits carry the flow id through NAT rewrites of the low 16.
        let ident = (flow.0 << 16) | (flow.0 & 0xFFFF);
        let src = self.topo.node(node).primary_addr();
        let mut packet = Packet::echo_request(src, dst, ident, 0);
        packet.ttl = ttl;
        self.ident_index.insert(flow.0, flow);
        self.schedule(self.now, EventKind::Send { node, packet });
        let timeout_seq = self.schedule(self.now + timeout, EventKind::FlowTimeout { flow });
        self.pending.insert(
            flow,
            Pending {
                node,
                sent_at: self.now,
                port: None,
                ident: Some(flow.0),
                timeout_seq,
            },
        );
        flow
    }

    /// Takes the outcome of a completed flow, if it has completed.
    pub fn poll(&mut self, flow: FlowId) -> Option<FlowOutcome> {
        self.completed.remove(&flow)
    }

    /// Number of completed-but-unpolled outcomes currently retained.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Drains and returns every completed-but-unpolled outcome recorded at
    /// or before `t`, in flow order. Campaign drivers call this between
    /// experiments so outcomes nobody polls cannot accumulate for the life
    /// of a shard.
    pub fn take_completed_before(&mut self, t: SimTime) -> Vec<(FlowId, FlowOutcome)> {
        let mut taken = Vec::new();
        self.completed.retain(|&flow, outcome| {
            if outcome.completed_at <= t {
                taken.push((flow, outcome.clone()));
                false
            } else {
                true
            }
        });
        taken
    }

    /// Runs the engine until `flow` completes (or the queue empties, which
    /// counts as a timeout).
    pub fn run_until(&mut self, flow: FlowId) -> FlowOutcome {
        loop {
            if let Some(outcome) = self.completed.remove(&flow) {
                return outcome;
            }
            if !self.step() {
                // Queue drained without completion: synthesize a timeout.
                self.complete(flow, FlowResult::TimedOut);
                return self.completed.remove(&flow).unwrap_or(FlowOutcome {
                    // `flow` was never pending (already polled, or a foreign
                    // id): a real timeout cannot be synthesized, so say so.
                    sent_at: self.now,
                    completed_at: self.now,
                    result: FlowResult::Unknown,
                });
            }
        }
    }

    /// Runs until all the given flows complete; returns outcomes in order.
    pub fn run_until_all(&mut self, flows: &[FlowId]) -> Vec<FlowOutcome> {
        flows.iter().map(|&f| self.run_until(f)).collect()
    }

    /// Dispatches one event. Returns `false` when the queue is empty.
    // detlint: hot
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.stats.events += 1;
        match ev.kind {
            EventKind::Arrive { node, packet } => {
                self.stats.arrives += 1;
                self.on_arrive(node, packet);
            }
            EventKind::Send { node, packet } => {
                self.stats.sends += 1;
                self.on_send(node, packet);
            }
            EventKind::ServiceTick { node, port } => {
                self.stats.service_ticks += 1;
                self.on_service_tick(node, port);
            }
            EventKind::FlowTimeout { flow } => {
                self.stats.flow_timeouts += 1;
                if self.pending.contains_key(&flow) {
                    self.stats.timeouts += 1;
                    // The timeout itself is firing: complete without trying
                    // to cancel the very event being dispatched.
                    self.complete_inner(flow, FlowResult::TimedOut, false);
                }
            }
        }
        true
    }

    /// Dispatches every event scheduled for the next occupied instant as
    /// one batch, including events scheduled *into* that instant while it
    /// is being drained. Returns the number dispatched (0 when idle).
    // detlint: hot
    pub fn step_batch(&mut self) -> u64 {
        let Some(t) = self.queue.next_time() else {
            return 0;
        };
        let mut n = 0;
        while self.queue.next_time() == Some(t) {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Processes all events scheduled at or before `t` in per-instant
    /// batches, then advances the clock to `t`. Used by campaign drivers to
    /// pace experiments.
    pub fn skip_to(&mut self, t: SimTime) {
        while let Some(next) = self.queue.next_time() {
            if next > t {
                break;
            }
            self.step_batch();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Drains the queue completely (bounded by `max_events` as a safety
    /// valve); returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    fn complete(&mut self, flow: FlowId, result: FlowResult) {
        self.complete_inner(flow, result, true);
    }

    /// Records a flow's outcome. `cancel_timeout` reaps the flow's pending
    /// `FlowTimeout` event from the queue; it is `false` only when that
    /// event is the one currently being dispatched.
    fn complete_inner(&mut self, flow: FlowId, result: FlowResult, cancel_timeout: bool) {
        if let Some(p) = self.pending.remove(&flow) {
            if let Some(port) = p.port {
                self.port_index.remove(&(p.node, port));
            }
            if let Some(ident) = p.ident {
                self.ident_index.remove(&ident);
            }
            if cancel_timeout {
                self.queue.cancel(p.timeout_seq);
                self.stats.flow_timeouts_cancelled += 1;
            }
            self.completed.insert(
                flow,
                FlowOutcome {
                    sent_at: p.sent_at,
                    completed_at: self.now,
                    result,
                },
            );
        }
    }

    /// Resolves a destination address to a node, honoring anycast from the
    /// viewpoint of `from`.
    fn resolve_dst(&self, from: NodeId, dst: Ipv4Addr) -> Option<NodeId> {
        if let Some(node) = self.topo.owner_of(dst) {
            return Some(node);
        }
        let instances = self.anycast.get(&dst)?;
        instances
            .iter()
            .copied()
            .filter(|&n| self.routes.reachable(from, n))
            .min_by_key(|&n| (self.routes.dist(from, n), n))
    }

    fn on_arrive(&mut self, node: NodeId, mut packet: Packet) {
        // 1. Un-NAT inbound packets addressed to this node's NAT pool, so the
        //    firewall sees inside-view addresses.
        let inbound_nat = self
            .topo
            .node(node)
            .nat
            .as_ref()
            .is_some_and(|nat| nat.public_addr() == packet.dst);
        if inbound_nat {
            if let Some(nat) = self.topo.node_mut(node).nat.as_mut() {
                match nat.translate(packet) {
                    Some(p) => packet = p,
                    None => {
                        self.stats.nat_drops += 1;
                        return;
                    }
                }
            }
        }
        // 2. Firewall.
        let now = self.now;
        if let Some(fw) = self.topo.node_mut(node).firewall.as_mut() {
            if fw.check(&packet, now) == crate::middlebox::Verdict::Drop {
                self.stats.firewall_drops += 1;
                self.tracer
                    .record(self.now, node, TraceEvent::FirewallDrop, &packet);
                return;
            }
        }
        // 3. Local delivery (NAT-in already restored inside addresses).
        let local = self.topo.node(node).addrs.contains(&packet.dst)
            || self
                .anycast
                .get(&packet.dst)
                .is_some_and(|inst| inst.contains(&node));
        if local {
            self.tracer
                .record(self.now, node, TraceEvent::Delivered, &packet);
            self.deliver(node, packet);
            return;
        }
        // 4. TTL handling happens before outbound NAT so ICMP errors carry
        //    the original (inside) source and route back to the prober —
        //    this is what makes egress routers visible to traceroute.
        let kind = self.topo.node(node).kind;
        if kind != NodeKind::TransparentRouter {
            if packet.ttl <= 1 {
                self.stats.ttl_expired += 1;
                self.tracer
                    .record(self.now, node, TraceEvent::TtlExpired, &packet);
                self.send_icmp_error(node, &packet, true);
                return;
            }
            packet.ttl -= 1;
        }
        // 5. NAT outbound.
        if let Some(nat) = self.topo.node_mut(node).nat.as_mut() {
            match nat.translate(packet) {
                Some(p) => packet = p,
                None => {
                    self.stats.nat_drops += 1;
                    return;
                }
            }
        }
        // 6. Transmit (TTL already handled).
        self.transmit(node, packet);
    }

    fn deliver(&mut self, node: NodeId, packet: Packet) {
        self.stats.delivered += 1;
        match packet.transport {
            Transport::Icmp(IcmpMsg::EchoRequest { ident, seq }) => {
                if self.topo.node(node).answers_ping.answers(packet.src) {
                    let reply = Packet {
                        src: packet.dst,
                        dst: packet.src,
                        ttl: crate::packet::DEFAULT_TTL,
                        transport: Transport::Icmp(IcmpMsg::EchoReply { ident, seq }),
                    };
                    let at = self.now + NODE_PROC_DELAY;
                    self.schedule(
                        at,
                        EventKind::Send {
                            node,
                            packet: reply,
                        },
                    );
                }
            }
            Transport::Icmp(IcmpMsg::EchoReply { ident, .. }) => {
                let key = ident >> 16;
                if let Some(&flow) = self.ident_index.get(&key) {
                    let from = packet.src;
                    self.complete(flow, FlowResult::EchoReply { from });
                }
            }
            Transport::Icmp(IcmpMsg::TimeExceeded { original }) => {
                let from = packet.src;
                if let Some(flow) = self.flow_for_original(node, &original) {
                    self.complete(flow, FlowResult::TimeExceeded { from });
                }
            }
            Transport::Icmp(IcmpMsg::DestUnreachable { original }) => {
                let from = packet.src;
                if let Some(flow) = self.flow_for_original(node, &original) {
                    self.complete(flow, FlowResult::Unreachable { from });
                }
            }
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                if self.services.contains_key(&(node, dst_port)) {
                    self.dispatch_service(
                        node, dst_port, packet.dst, packet.src, src_port, payload,
                    );
                } else if let Some(&flow) = self.port_index.get(&(node, dst_port)) {
                    let from = packet.src;
                    self.complete(flow, FlowResult::Response { from, payload });
                } else {
                    // Closed port: unreachable back to sender.
                    let key = ProbeKey {
                        src: packet.src,
                        dst: packet.dst,
                        ident: 0,
                        seq: 0,
                        udp_ports: Some((src_port, dst_port)),
                    };
                    let err = Packet {
                        src: packet.dst,
                        dst: packet.src,
                        ttl: crate::packet::DEFAULT_TTL,
                        transport: Transport::Icmp(IcmpMsg::DestUnreachable { original: key }),
                    };
                    let at = self.now + NODE_PROC_DELAY;
                    self.schedule(at, EventKind::Send { node, packet: err });
                }
            }
        }
    }

    fn flow_for_original(&self, node: NodeId, original: &ProbeKey) -> Option<FlowId> {
        match original.udp_ports {
            Some((src_port, _)) => self.port_index.get(&(node, src_port)).copied(),
            None => self.ident_index.get(&(original.ident >> 16)).copied(),
        }
    }

    /// Fires a requested service timer.
    fn on_service_tick(&mut self, node: NodeId, port: u16) {
        let Some(mut service) = self.services.remove(&(node, port)) else {
            return; // service was unregistered in the meantime
        };
        let local_addr = self.topo.node(node).primary_addr();
        let mut ctx = ServiceCtx {
            now: self.now,
            local_addr,
            rng: &mut self.rng,
            wake_after: None,
        };
        let egress = service.tick(&mut ctx);
        let wake = ctx.wake_after;
        self.services.insert((node, port), service);
        self.apply_service_output(node, port, local_addr, egress, wake);
    }

    /// Common tail of service dispatch: send egress datagrams and schedule
    /// a requested wake-up.
    fn apply_service_output(
        &mut self,
        node: NodeId,
        port: u16,
        local_addr: Ipv4Addr,
        egress: Vec<Egress>,
        wake: Option<SimDuration>,
    ) {
        if let Some(d) = wake {
            let at = self.now + d;
            self.schedule(at, EventKind::ServiceTick { node, port });
        }
        for e in egress {
            let src = e.src_addr.unwrap_or(local_addr);
            debug_assert!(
                self.topo.node(node).addrs.contains(&src)
                    || self
                        .anycast
                        .get(&src)
                        .is_some_and(|inst| inst.contains(&node)),
                "service egress from unowned address {src}"
            );
            let out = Packet::udp(src, port, e.dst, e.dst_port, e.payload);
            let at = self.now + NODE_PROC_DELAY + e.delay;
            self.schedule(at, EventKind::Send { node, packet: out });
        }
    }

    fn dispatch_service(
        &mut self,
        node: NodeId,
        port: u16,
        local_addr: Ipv4Addr,
        from: Ipv4Addr,
        from_port: u16,
        payload: Vec<u8>,
    ) {
        // Temporarily take the service out so it can borrow the engine RNG.
        let Some(mut service) = self.services.remove(&(node, port)) else {
            // Caller checked presence, but a reentrant handler may have
            // unbound the service meanwhile; the datagram is simply dropped.
            return;
        };
        let mut ctx = ServiceCtx {
            now: self.now,
            local_addr,
            rng: &mut self.rng,
            wake_after: None,
        };
        let egress = service.handle(&mut ctx, from, from_port, &payload);
        let wake = ctx.wake_after;
        self.services.insert((node, port), service);
        self.apply_service_output(node, port, local_addr, egress, wake);
    }

    /// Handles a locally originated packet: local delivery or transmission
    /// without TTL decrement.
    fn on_send(&mut self, node: NodeId, packet: Packet) {
        let local = self.topo.node(node).addrs.contains(&packet.dst)
            || self
                .anycast
                .get(&packet.dst)
                .is_some_and(|inst| inst.contains(&node));
        if local {
            self.deliver(node, packet);
        } else {
            self.transmit(node, packet);
        }
    }

    /// Picks the next hop toward the destination and schedules arrival.
    fn transmit(&mut self, node: NodeId, packet: Packet) {
        let Some(dst_node) = self.resolve_dst(node, packet.dst) else {
            self.stats.unreachable += 1;
            self.tracer
                .record(self.now, node, TraceEvent::Unroutable, &packet);
            self.send_icmp_error(node, &packet, false);
            return;
        };
        if dst_node == node {
            // Anycast resolved to ourselves (possible when the instance set
            // includes this node but the address check missed it).
            self.deliver(node, packet);
            return;
        }
        let Some(hop) = self.routes.next_hop(node, dst_node) else {
            self.stats.unreachable += 1;
            self.send_icmp_error(node, &packet, false);
            return;
        };
        self.stats.forwards += 1;
        self.tracer
            .record(self.now, node, TraceEvent::Forwarded, &packet);
        let loss = self.topo.link(hop.link).loss;
        if loss > 0.0 {
            use rand::Rng;
            if self.rng.gen_bool(loss) {
                self.stats.link_losses += 1;
                self.tracer
                    .record(self.now, node, TraceEvent::LinkLoss, &packet);
                return;
            }
        }
        if let Some(plan) = self.fault.as_mut() {
            if plan.should_drop(hop.link, self.now) {
                self.stats.fault_drops += 1;
                self.tracer
                    .record(self.now, node, TraceEvent::LinkLoss, &packet);
                return;
            }
        }
        let link = self.topo.link(hop.link);
        let latency = link.latency.sample(&mut self.rng);
        let latency = match self.fault.as_mut() {
            Some(plan) => latency + plan.extra_latency(hop.link, self.now, latency),
            None => latency,
        };
        // Capacity-limited links serialize packets and queue behind earlier
        // transmissions in the same direction.
        let depart = if let Some(bps) = link.bandwidth_bps {
            let dir = usize::from(link.a != node);
            if hop.link >= self.link_busy_until.len() {
                self.link_busy_until
                    .resize(self.topo.links().len(), [SimTime::ZERO; 2]);
            }
            let busy = &mut self.link_busy_until[hop.link][dir];
            let start = (*busy).max(self.now);
            let ser_us = (packet.wire_size() as u64 * 8 * 1_000_000) / bps;
            let done = start + SimDuration::from_micros(ser_us.max(1));
            *busy = done;
            done
        } else {
            self.now
        };
        let at = depart + latency + NODE_PROC_DELAY;
        self.schedule(
            at,
            EventKind::Arrive {
                node: hop.node,
                packet,
            },
        );
    }

    /// Emits TimeExceeded (`expired == true`) or DestUnreachable back to the
    /// offending packet's source. Hosts and routers answer; transparent
    /// routers never do (they cannot expire TTLs either).
    fn send_icmp_error(&mut self, node: NodeId, offending: &Packet, expired: bool) {
        // Never answer an ICMP error with another error.
        if matches!(
            offending.transport,
            Transport::Icmp(IcmpMsg::TimeExceeded { .. })
                | Transport::Icmp(IcmpMsg::DestUnreachable { .. })
        ) {
            return;
        }
        let original = offending.probe_key();
        let msg = if expired {
            IcmpMsg::TimeExceeded { original }
        } else {
            IcmpMsg::DestUnreachable { original }
        };
        let err = Packet {
            src: self.topo.node(node).primary_addr(),
            dst: offending.src,
            ttl: crate::packet::DEFAULT_TTL,
            transport: Transport::Icmp(msg),
        };
        let at = self.now + NODE_PROC_DELAY;
        self.schedule(at, EventKind::Send { node, packet: err });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::topo::{Asn, Coord, NodeKind};

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// host A -- r1 -- r2 -- host B
    fn line_network() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let r1 = t.add_node(
            "r1",
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let r2 = t.add_node(
            "r2",
            NodeKind::Router,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 0, 3)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Host,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 0, 4)],
        );
        t.add_link(a, r1, LatencyModel::constant_ms(5));
        t.add_link(r1, r2, LatencyModel::constant_ms(10));
        t.add_link(r2, b, LatencyModel::constant_ms(5));
        (Network::new(t, 1), a, r1, r2, b)
    }

    #[test]
    fn ping_round_trip_time() {
        let (mut net, a, _, _, _) = line_network();
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        let out = net.run_until(flow);
        assert!(matches!(out.result, FlowResult::EchoReply { from } if from == ip(10, 0, 0, 4)));
        // 2 * (5+10+5) ms plus small proc delays.
        let rtt = out.rtt().as_millis_f64();
        assert!((40.0..42.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn ping_unanswered_when_host_ignores_icmp() {
        let (mut net, a, _, _, b) = line_network();
        net.topo_mut().node_mut(b).answers_ping = crate::topo::PingPolicy::Never;
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_millis(200));
        let out = net.run_until(flow);
        assert_eq!(out.result, FlowResult::TimedOut);
        assert_eq!(net.stats.timeouts, 1);
    }

    #[test]
    fn traceroute_probe_discovers_hop() {
        let (mut net, a, _, _, _) = line_network();
        let flow = net.probe_ttl(a, ip(10, 0, 0, 4), 2, SimDuration::from_secs(5));
        let out = net.run_until(flow);
        // TTL 2: expires at r2 (a does not decrement its own originations —
        // the first decrement happens at r1).
        match out.result {
            FlowResult::TimeExceeded { from } => assert_eq!(from, ip(10, 0, 0, 3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn udp_to_closed_port_is_unreachable() {
        let (mut net, a, _, _, _) = line_network();
        let flow = net.udp_request(a, ip(10, 0, 0, 4), 9999, vec![1], SimDuration::from_secs(5));
        let out = net.run_until(flow);
        assert!(matches!(out.result, FlowResult::Unreachable { from } if from == ip(10, 0, 0, 4)));
    }

    /// A parrot service that echoes payloads back reversed.
    struct Parrot;
    impl UdpService for Parrot {
        fn handle(
            &mut self,
            _ctx: &mut ServiceCtx<'_>,
            from: Ipv4Addr,
            from_port: u16,
            payload: &[u8],
        ) -> Vec<Egress> {
            let mut p = payload.to_vec();
            p.reverse();
            vec![Egress::reply(
                from,
                from_port,
                p,
                SimDuration::from_micros(100),
            )]
        }
    }

    #[test]
    fn udp_service_round_trip() {
        let (mut net, a, _, _, b) = line_network();
        net.register_service(b, 53, Box::new(Parrot));
        let flow = net.udp_request(
            a,
            ip(10, 0, 0, 4),
            53,
            vec![1, 2, 3],
            SimDuration::from_secs(5),
        );
        let out = net.run_until(flow);
        match out.result {
            FlowResult::Response { from, payload } => {
                assert_eq!(from, ip(10, 0, 0, 4));
                assert_eq!(payload, vec![3, 2, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anycast_routes_to_nearest_instance() {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let r = t.add_node(
            "r",
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let near = t.add_node(
            "near",
            NodeKind::Host,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 1, 1)],
        );
        let far = t.add_node(
            "far",
            NodeKind::Host,
            Asn(2),
            Coord::default(),
            vec![ip(10, 0, 2, 1)],
        );
        t.add_link(a, r, LatencyModel::constant_ms(1));
        t.add_link(r, near, LatencyModel::constant_ms(5));
        t.add_link(r, far, LatencyModel::constant_ms(50));
        let mut net = Network::new(t, 7);
        net.add_anycast(ip(8, 8, 8, 8), vec![near, far]);
        let flow = net.ping(a, ip(8, 8, 8, 8), SimDuration::from_secs(5));
        let out = net.run_until(flow);
        match out.result {
            FlowResult::EchoReply { from } => assert_eq!(from, ip(8, 8, 8, 8)),
            other => panic!("unexpected {other:?}"),
        }
        // RTT proves the near instance answered: ~2*(1+5)=12ms, not 102ms.
        assert!(out.rtt().as_millis_f64() < 20.0, "rtt {}", out.rtt());
    }

    #[test]
    fn transparent_router_hides_from_traceroute() {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let lsr = t.add_node(
            "mpls",
            NodeKind::TransparentRouter,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 3)],
        );
        t.add_link(a, lsr, LatencyModel::constant_ms(1));
        t.add_link(lsr, b, LatencyModel::constant_ms(1));
        let mut net = Network::new(t, 3);
        // TTL 1 passes straight through the LSR and reaches b.
        let flow = net.probe_ttl(a, ip(10, 0, 0, 3), 1, SimDuration::from_secs(5));
        let out = net.run_until(flow);
        assert!(matches!(out.result, FlowResult::EchoReply { from } if from == ip(10, 0, 0, 3)));
    }

    #[test]
    fn skip_to_advances_clock() {
        let (mut net, ..) = line_network();
        assert_eq!(net.now(), SimTime::ZERO);
        net.skip_to(SimTime::from_micros(5_000_000));
        assert_eq!(net.now().as_secs(), 5);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut net, a, ..) = line_network();
            let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
            let out = net.run_until(flow);
            (out.rtt().as_micros(), net.stats.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bandwidth_serializes_and_queues() {
        // 1 Mbit/s link: a 1028-byte datagram serializes in ~8.2 ms; ten
        // of them queue behind each other.
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let link = t.add_link(a, b, LatencyModel::constant_ms(1));
        t.set_link_bandwidth(link, Some(1_000_000));
        let mut net = Network::new(t, 5);
        net.register_service(b, 7, Box::new(Parrot));
        let flows: Vec<FlowId> = (0..10)
            .map(|_| {
                net.udp_request(
                    a,
                    ip(10, 0, 0, 2),
                    7,
                    vec![0u8; 1000],
                    SimDuration::from_secs(10),
                )
            })
            .collect();
        let outcomes = net.run_until_all(&flows);
        let rtts: Vec<f64> = outcomes.iter().map(|o| o.rtt().as_millis_f64()).collect();
        // First packet: ~8.2 ms serialization + 1 ms latency each way plus
        // the small reply. Last packet queues behind nine others.
        assert!(rtts[0] > 8.0, "first rtt {}", rtts[0]);
        assert!(
            rtts[9] > rtts[0] + 8.0 * 8.0,
            "no queueing: first {} last {}",
            rtts[0],
            rtts[9]
        );
    }

    #[test]
    fn infinite_bandwidth_does_not_queue() {
        let (mut net, a, ..) = line_network();
        let flows: Vec<FlowId> = (0..5)
            .map(|_| net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5)))
            .collect();
        let outcomes = net.run_until_all(&flows);
        let spread = outcomes
            .iter()
            .map(|o| o.rtt().as_millis_f64())
            .fold((f64::MAX, f64::MIN), |(lo, hi), r| (lo.min(r), hi.max(r)));
        assert!(spread.1 - spread.0 < 1.0, "unexpected queueing {spread:?}");
    }

    #[test]
    fn tracer_sees_the_packet_journey() {
        let (mut net, a, ..) = line_network();
        net.tracer.enable(64);
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        net.run_until(flow);
        let dump = net.tracer.dump();
        assert!(dump.contains("forward"), "{dump}");
        assert!(dump.contains("deliver"), "{dump}");
        assert!(dump.contains("10.0.0.4"), "{dump}");
        // Request out and reply back: at least 2 forwards per router.
        assert!(net.tracer.len() >= 6, "{} entries", net.tracer.len());
        net.tracer.disable();
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        net.run_until(flow);
        assert!(net.tracer.is_empty());
    }

    #[test]
    fn run_to_quiescence_is_bounded() {
        let (mut net, a, ..) = line_network();
        net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        let n = net.run_to_quiescence(10_000);
        assert!(n > 0);
        assert!(!net.step());
    }

    #[test]
    fn heap_and_wheel_replay_identically() {
        let run = |kind: QueueKind| {
            let mut t = Topology::new();
            let a = t.add_node(
                "a",
                NodeKind::Host,
                Asn(1),
                Coord::default(),
                vec![ip(10, 0, 0, 1)],
            );
            let b = t.add_node(
                "b",
                NodeKind::Host,
                Asn(2),
                Coord::default(),
                vec![ip(10, 0, 0, 4)],
            );
            t.add_link(a, b, LatencyModel::constant_ms(7));
            let mut net = Network::new_with_queue(t, 99, kind);
            assert_eq!(net.queue_kind(), kind);
            net.register_service(b, 53, Box::new(Parrot));
            let mut rtts = Vec::new();
            for i in 0..20u8 {
                let flow =
                    net.udp_request(a, ip(10, 0, 0, 4), 53, vec![i], SimDuration::from_secs(2));
                rtts.push(net.run_until(flow).rtt().as_micros());
            }
            net.skip_to(SimTime::from_micros(30_000_000));
            (rtts, net.now(), net.stats.clone())
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Wheel));
    }

    #[test]
    fn completed_outcomes_are_drainable_and_bounded() {
        let (mut net, a, ..) = line_network();
        // Fire pings without ever polling them: the outcomes land in
        // `completed` and stay there (the leak this API exists to stop).
        for _ in 0..10 {
            net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        }
        net.run_to_quiescence(100_000);
        assert_eq!(net.completed_len(), 10);
        let half_way = net.take_completed_before(SimTime::from_micros(0)).len();
        assert_eq!(half_way, 0, "nothing completed at t=0");
        let drained = net.take_completed_before(net.now());
        assert_eq!(drained.len(), 10);
        assert_eq!(net.completed_len(), 0);
        // Drained outcomes arrive in flow order and carry real results.
        for w in drained.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(drained.iter().all(|(_, o)| o.answered()));
    }

    #[test]
    fn early_completion_cancels_the_timeout_event() {
        let (mut net, a, ..) = line_network();
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        let out = net.run_until(flow);
        assert!(out.answered());
        assert_eq!(net.stats.flow_timeouts_cancelled, 1);
        // The cancelled timeout is reaped, not dispatched: draining the
        // rest of the run fires no timeout events at all.
        net.run_to_quiescence(100_000);
        assert_eq!(net.stats.flow_timeouts, 0);
        assert_eq!(net.stats.timeouts, 0);
    }

    #[test]
    fn real_timeouts_still_fire_and_count() {
        let (mut net, a, _, _, b) = line_network();
        net.topo_mut().node_mut(b).answers_ping = crate::topo::PingPolicy::Never;
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_millis(200));
        let out = net.run_until(flow);
        assert_eq!(out.result, FlowResult::TimedOut);
        assert_eq!(net.stats.flow_timeouts, 1);
        assert_eq!(net.stats.timeouts, 1);
        assert_eq!(net.stats.flow_timeouts_cancelled, 0);
    }

    #[test]
    fn run_until_foreign_flow_reports_unknown_not_timeout() {
        let (mut net, a, ..) = line_network();
        let flow = net.ping(a, ip(10, 0, 0, 4), SimDuration::from_secs(5));
        let first = net.run_until(flow);
        assert!(first.answered());
        // Same id again (already polled) and a fabricated id: both must be
        // typed Unknown, not a fake instant TimedOut.
        for bogus in [flow, FlowId(999_999)] {
            let out = net.run_until(bogus);
            assert_eq!(out.result, FlowResult::Unknown);
            assert!(!out.answered());
            assert_eq!(out.rtt(), SimDuration::ZERO);
        }
        // And no timeout was counted for either.
        assert_eq!(net.stats.timeouts, 0);
    }
}
