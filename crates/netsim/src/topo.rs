//! Topology: nodes, links, geography, and autonomous-system tagging.

use crate::addr::Prefix;
use crate::latency::LatencyModel;
use crate::middlebox::{Firewall, Nat};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Who a node answers ICMP echo requests from.
#[derive(Debug, Clone, PartialEq)]
pub enum PingPolicy {
    /// Answer everyone (default).
    Always,
    /// Answer nobody.
    Never,
    /// Answer only sources inside one of these prefixes.
    OnlyFrom(Vec<Prefix>),
    /// Answer everyone except sources inside these prefixes (Verizon's
    /// external resolvers answer the outside world but not carrier-internal
    /// clients — §4.2 vs Table 4).
    NotFrom(Vec<Prefix>),
}

impl PingPolicy {
    /// Whether a probe from `src` gets an answer.
    pub fn answers(&self, src: Ipv4Addr) -> bool {
        match self {
            PingPolicy::Always => true,
            PingPolicy::Never => false,
            PingPolicy::OnlyFrom(ps) => ps.iter().any(|p| p.contains(src)),
            PingPolicy::NotFrom(ps) => !ps.iter().any(|p| p.contains(src)),
        }
    }
}

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Autonomous system number, used for egress detection and the paper's
/// observation that Verizon's tiered resolvers live in different ASes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

/// A point on the simulation's 2-D map, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coord {
    /// East–west position.
    pub x_km: f64,
    /// North–south position.
    pub y_km: f64,
}

impl Coord {
    /// Euclidean distance in kilometres.
    pub fn distance_km(&self, other: &Coord) -> f64 {
        let dx = self.x_km - other.x_km;
        let dy = self.y_km - other.y_km;
        (dx * dx + dy * dy).sqrt()
    }
}

/// What role a node plays. Only behaviourally relevant distinctions are
/// encoded; everything else is configuration on the node itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (device, server, vantage point).
    Host,
    /// A router that decrements TTL and answers ICMP errors.
    Router,
    /// An MPLS-style label-switched router: forwards without decrementing
    /// TTL and never answers probes — the tunnelling the paper observed
    /// hiding carrier structure (§4.2).
    TransparentRouter,
}

/// A node and all its static configuration.
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier (index into the topology's node vector).
    pub id: NodeId,
    /// Human-readable label for traces and debugging.
    pub label: String,
    /// Role.
    pub kind: NodeKind,
    /// Addresses owned by this node. The first is its primary address.
    pub addrs: Vec<Ipv4Addr>,
    /// AS this node belongs to.
    pub asn: Asn,
    /// Geographic position.
    pub coord: Coord,
    /// ICMP echo answering policy.
    pub answers_ping: PingPolicy,
    /// Stateful firewall, if this node polices traffic through it.
    pub firewall: Option<Firewall>,
    /// NAT, if this node translates traffic through it.
    pub nat: Option<Nat>,
}

impl Node {
    /// Primary address (panics if the node has none — a build error).
    pub fn primary_addr(&self) -> Ipv4Addr {
        self.addrs[0]
    }
}

/// A bidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Latency distribution, sampled per traversal (each direction
    /// independently).
    pub latency: LatencyModel,
    /// Per-traversal loss probability (radio links lose packets; wired
    /// links default to zero).
    pub loss: f64,
    /// Link capacity in bits/second. `None` = infinite (no serialization
    /// delay, no queueing) — the default for core links, where our packet
    /// volumes never approach saturation. Radio links set this.
    pub bandwidth_bps: Option<u64>,
}

/// The static network graph.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[node] = list of (neighbor, link index)
    adjacency: Vec<Vec<(NodeId, usize)>>,
    addr_map: BTreeMap<Ipv4Addr, NodeId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; addresses must be globally unique within the topology.
    pub fn add_node(
        &mut self,
        label: impl Into<String>,
        kind: NodeKind,
        asn: Asn,
        coord: Coord,
        addrs: Vec<Ipv4Addr>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &a in &addrs {
            let prior = self.addr_map.insert(a, id);
            assert!(prior.is_none(), "duplicate address {a}");
        }
        self.nodes.push(Node {
            id,
            label: label.into(),
            kind,
            addrs,
            asn,
            coord,
            answers_ping: PingPolicy::Always,
            firewall: None,
            nat: None,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an additional address to an existing node.
    pub fn add_addr(&mut self, node: NodeId, addr: Ipv4Addr) {
        let prior = self.addr_map.insert(addr, node);
        assert!(prior.is_none(), "duplicate address {addr}");
        self.nodes[node.index()].addrs.push(addr);
    }

    /// Replaces one of a node's addresses (device IP reassignment — the
    /// ephemeral cellular addressing of Balakrishnan et al.). The old
    /// address is released.
    pub fn replace_addr(&mut self, node: NodeId, old: Ipv4Addr, new: Ipv4Addr) {
        let owner = self.addr_map.remove(&old);
        assert_eq!(owner, Some(node), "{old} not owned by {node:?}");
        let prior = self.addr_map.insert(new, node);
        assert!(prior.is_none(), "duplicate address {new}");
        let addrs = &mut self.nodes[node.index()].addrs;
        // addr_map and node.addrs are kept in lockstep; ownership of `old`
        // was asserted above, so absence here means internal corruption
        // that must not be silently ignored.
        let slot = addrs.iter().position(|a| *a == old);
        assert!(slot.is_some(), "{old} missing from {node:?} addr list");
        if let Some(i) = slot {
            addrs[i] = new;
        }
    }

    /// Connects two nodes with the given latency model.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: LatencyModel) -> usize {
        assert_ne!(a, b, "self-link on {a:?}");
        let idx = self.links.len();
        self.links.push(Link {
            a,
            b,
            latency,
            loss: 0.0,
            bandwidth_bps: None,
        });
        self.adjacency[a.index()].push((b, idx));
        self.adjacency[b.index()].push((a, idx));
        idx
    }

    /// Connects two nodes with a wired link sized by their geographic
    /// distance.
    pub fn add_wired_link(&mut self, a: NodeId, b: NodeId) -> usize {
        let d = self.nodes[a.index()]
            .coord
            .distance_km(&self.nodes[b.index()].coord);
        self.add_link(a, b, LatencyModel::wired(d))
    }

    /// Replaces the latency model of a link (used by the cellular layer when
    /// a device's radio technology changes).
    pub fn set_link_latency(&mut self, link: usize, latency: LatencyModel) {
        self.links[link].latency = latency;
    }

    /// Sets a link's per-traversal loss probability.
    pub fn set_link_loss(&mut self, link: usize, loss: f64) {
        self.links[link].loss = loss.clamp(0.0, 1.0);
    }

    /// Sets a link's capacity (`None` = infinite).
    pub fn set_link_bandwidth(&mut self, link: usize, bps: Option<u64>) {
        self.links[link].bandwidth_bps = bps.map(|b| b.max(1));
    }

    /// Moves one end of a link to a different node (device reattachment to a
    /// new gateway). Routes must be rebuilt afterwards.
    pub fn rewire_link(&mut self, link: usize, keep: NodeId, new_peer: NodeId) {
        assert_ne!(keep, new_peer, "self-link on {keep:?}");
        let (old_a, old_b) = {
            let l = &self.links[link];
            (l.a, l.b)
        };
        assert!(
            old_a == keep || old_b == keep,
            "link {link} does not touch {keep:?}"
        );
        let old_peer = if old_a == keep { old_b } else { old_a };
        self.adjacency[old_peer.index()].retain(|&(_, li)| li != link);
        self.adjacency[keep.index()].retain(|&(_, li)| li != link);
        self.links[link].a = keep;
        self.links[link].b = new_peer;
        self.adjacency[keep.index()].push((new_peer, link));
        self.adjacency[new_peer.index()].push((keep, link));
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Link accessor.
    pub fn link(&self, idx: usize) -> &Link {
        &self.links[idx]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of a node with the connecting link index.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.adjacency[id.index()]
    }

    /// Which node owns an address.
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.addr_map.get(&addr).copied()
    }

    /// The AS of the node owning `addr`, if known.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.owner_of(addr).map(|n| self.nodes[n.index()].asn)
    }

    /// All addresses within `prefix` that are assigned to some node.
    pub fn addrs_in(&self, prefix: Prefix) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .addr_map
            .keys()
            .copied()
            .filter(|&a| prefix.contains(a))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn two_node_topo() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(100),
            Coord {
                x_km: 0.0,
                y_km: 0.0,
            },
            vec![ip(10, 0, 0, 1)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Router,
            Asn(200),
            Coord {
                x_km: 300.0,
                y_km: 400.0,
            },
            vec![ip(10, 0, 0, 2)],
        );
        t.add_wired_link(a, b);
        (t, a, b)
    }

    #[test]
    fn builds_and_indexes() {
        let (t, a, b) = two_node_topo();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.owner_of(ip(10, 0, 0, 1)), Some(a));
        assert_eq!(t.owner_of(ip(10, 0, 0, 2)), Some(b));
        assert_eq!(t.owner_of(ip(9, 9, 9, 9)), None);
        assert_eq!(t.asn_of(ip(10, 0, 0, 2)), Some(Asn(200)));
        assert_eq!(t.neighbors(a).len(), 1);
        assert_eq!(t.neighbors(b)[0].0, a);
    }

    #[test]
    fn wired_link_uses_distance() {
        let (t, ..) = two_node_topo();
        // distance = 500 km -> propagation 2500 µs, plus jitter mean
        assert!(t.link(0).latency.mean_micros() >= 2500);
    }

    #[test]
    #[should_panic(expected = "duplicate address")]
    fn rejects_duplicate_addresses() {
        let mut t = Topology::new();
        t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(1, 1, 1, 1)],
        );
        t.add_node(
            "b",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(1, 1, 1, 1)],
        );
    }

    #[test]
    fn distance_math() {
        let a = Coord {
            x_km: 0.0,
            y_km: 0.0,
        };
        let b = Coord {
            x_km: 3.0,
            y_km: 4.0,
        };
        assert!((a.distance_km(&b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn secondary_addresses() {
        let (mut t, a, _) = two_node_topo();
        t.add_addr(a, ip(192, 0, 2, 99));
        assert_eq!(t.owner_of(ip(192, 0, 2, 99)), Some(a));
        assert_eq!(t.node(a).primary_addr(), ip(10, 0, 0, 1));
    }

    #[test]
    fn replace_addr_swaps_ownership() {
        let (mut t, a, _) = two_node_topo();
        t.replace_addr(a, ip(10, 0, 0, 1), ip(10, 0, 0, 99));
        assert_eq!(t.owner_of(ip(10, 0, 0, 1)), None);
        assert_eq!(t.owner_of(ip(10, 0, 0, 99)), Some(a));
        assert_eq!(t.node(a).primary_addr(), ip(10, 0, 0, 99));
    }

    #[test]
    fn rewire_link_moves_endpoint() {
        let mut t = Topology::new();
        let a = t.add_node(
            "a",
            NodeKind::Host,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 1)],
        );
        let b = t.add_node(
            "b",
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 2)],
        );
        let c = t.add_node(
            "c",
            NodeKind::Router,
            Asn(1),
            Coord::default(),
            vec![ip(10, 0, 0, 3)],
        );
        let link = t.add_link(a, b, crate::latency::LatencyModel::constant_ms(1));
        t.rewire_link(link, a, c);
        assert_eq!(t.neighbors(a), &[(c, link)]);
        assert!(t.neighbors(b).is_empty());
        assert_eq!(t.neighbors(c), &[(a, link)]);
        assert_eq!(t.link(link).a, a);
        assert_eq!(t.link(link).b, c);
    }

    #[test]
    fn addrs_in_prefix() {
        let (mut t, a, _) = two_node_topo();
        t.add_addr(a, ip(10, 0, 0, 77));
        let found = t.addrs_in("10.0.0.0/24".parse().unwrap());
        assert_eq!(found.len(), 3);
    }
}
