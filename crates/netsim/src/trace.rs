//! Packet tracing: an optional bounded event log the engine fills as it
//! forwards, delivers, and drops packets — the simulator's equivalent of a
//! capture on every interface at once. Off by default; enable it when
//! debugging a path or writing an example that explains one.

use crate::packet::Packet;
use crate::time::SimTime;
use crate::topo::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// What happened to a packet at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Forwarded toward the next hop.
    Forwarded,
    /// Delivered to a local service or transaction.
    Delivered,
    /// Dropped by a firewall.
    FirewallDrop,
    /// Dropped for missing NAT state.
    NatDrop,
    /// TTL expired.
    TtlExpired,
    /// No route/owner for the destination.
    Unroutable,
    /// Lost on a lossy link.
    LinkLoss,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceEvent::Forwarded => "forward",
            TraceEvent::Delivered => "deliver",
            TraceEvent::FirewallDrop => "fw-drop",
            TraceEvent::NatDrop => "nat-drop",
            TraceEvent::TtlExpired => "ttl-exceeded",
            TraceEvent::Unroutable => "unroutable",
            TraceEvent::LinkLoss => "link-loss",
        };
        write!(f, "{s}")
    }
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// Node it happened at.
    pub node: NodeId,
    /// What happened.
    pub event: TraceEvent,
    /// One-line packet summary.
    pub packet: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n{} {:<12} {}",
            self.time,
            self.node.0,
            self.event.to_string(),
            self.packet
        )
    }
}

/// The bounded trace buffer.
#[derive(Debug, Default)]
pub struct Tracer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
}

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Enables tracing with a ring capacity.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
        self.entries.clear();
    }

    /// Disables tracing and clears the buffer.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.entries.clear();
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, node: NodeId, event: TraceEvent, packet: &Packet) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            time,
            node,
            event,
            packet: packet.summary(),
        });
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all recorded entries but keeps tracing enabled.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the buffer as text, one entry per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::echo_request(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 7, 0)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.record(SimTime::ZERO, NodeId(1), TraceEvent::Forwarded, &pkt());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_buffer_keeps_the_newest() {
        let mut t = Tracer::new();
        t.enable(3);
        for i in 0..5 {
            t.record(
                SimTime::from_micros(i),
                NodeId(i as u32),
                TraceEvent::Forwarded,
                &pkt(),
            );
        }
        assert_eq!(t.len(), 3);
        let first = t.entries().next().unwrap();
        assert_eq!(first.node, NodeId(2));
    }

    #[test]
    fn dump_is_line_per_entry() {
        let mut t = Tracer::new();
        t.enable(10);
        t.record(SimTime::ZERO, NodeId(1), TraceEvent::FirewallDrop, &pkt());
        t.record(SimTime::ZERO, NodeId(2), TraceEvent::Delivered, &pkt());
        let dump = t.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("fw-drop"));
        assert!(dump.contains("deliver"));
        assert!(dump.contains("1.1.1.1"));
    }

    #[test]
    fn disable_clears() {
        let mut t = Tracer::new();
        t.enable(4);
        t.record(SimTime::ZERO, NodeId(1), TraceEvent::LinkLoss, &pkt());
        t.disable();
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }
}
