//! End-to-end TCP-lite tests over a simulated network: handshake timing,
//! segmentation, loss recovery, and failure behaviour.

use netsim::engine::Network;
use netsim::latency::LatencyModel;
use netsim::tcplite::{TcpHttpServer, MSS};
use netsim::time::SimDuration;
use netsim::topo::{Asn, Coord, NodeId, NodeKind, Topology};
use netsim::HTTP_PORT;
use std::net::Ipv4Addr;

fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

/// client -- r -- server with 10 ms per link.
fn network(page_size: usize, loss: f64, seed: u64) -> (Network, NodeId, Ipv4Addr) {
    let mut t = Topology::new();
    let client = t.add_node(
        "c",
        NodeKind::Host,
        Asn(1),
        Coord::default(),
        vec![ip(10, 0, 0, 1)],
    );
    let r = t.add_node(
        "r",
        NodeKind::Router,
        Asn(1),
        Coord::default(),
        vec![ip(10, 0, 0, 2)],
    );
    let server = t.add_node(
        "s",
        NodeKind::Host,
        Asn(2),
        Coord::default(),
        vec![ip(10, 0, 0, 3)],
    );
    let lossy = t.add_link(client, r, LatencyModel::constant_ms(10));
    t.add_link(r, server, LatencyModel::constant_ms(10));
    t.set_link_loss(lossy, loss);
    let mut net = Network::new(t, seed);
    net.register_service(
        server,
        HTTP_PORT,
        Box::new(TcpHttpServer::new(page_size, SimDuration::from_millis(5))),
    );
    (net, client, ip(10, 0, 0, 3))
}

#[test]
fn lossless_fetch_completes_with_correct_byte_count() {
    let page = 64 * 1024;
    let (mut net, client, server) = network(page, 0.0, 1);
    let report = net.tcp_get(client, server, "/index.html", SimDuration::from_secs(30));
    assert!(report.success, "{report:?}");
    assert_eq!(report.bytes, page);
    // TTFB = handshake (1 RTT = 40 ms) + request (1 RTT) + 5 ms think.
    let ttfb = report.ttfb.unwrap().as_millis_f64();
    assert!((84.0..95.0).contains(&ttfb), "ttfb {ttfb}ms");
    // Transfer takes longer than TTFB (46 segments in windows of 10).
    assert!(report.total.unwrap() > report.ttfb.unwrap());
}

#[test]
fn small_page_fits_one_segment() {
    let (mut net, client, server) = network(512, 0.0, 2);
    let report = net.tcp_get(client, server, "/", SimDuration::from_secs(10));
    assert!(report.success);
    assert_eq!(report.bytes, 512);
    // One segment: total ≈ ttfb + half RTT for the FIN exchange.
    let gap = report.total.unwrap().as_millis_f64() - report.ttfb.unwrap().as_millis_f64();
    assert!(gap < 50.0, "gap {gap}ms");
}

#[test]
fn transfer_survives_heavy_loss_through_retransmission() {
    let page = 32 * 1024;
    let (mut net, client, server) = network(page, 0.15, 3);
    let report = net.tcp_get(client, server, "/big", SimDuration::from_secs(60));
    assert!(report.success, "transfer failed under loss: {report:?}");
    assert_eq!(report.bytes, page);
    assert!(net.stats.link_losses > 0, "loss never triggered");
    // Loss makes it slower than the lossless run.
    let (mut clean, c2, s2) = network(page, 0.0, 3);
    let clean_report = clean.tcp_get(c2, s2, "/big", SimDuration::from_secs(60));
    assert!(report.total.unwrap() > clean_report.total.unwrap());
}

#[test]
fn fetch_fails_cleanly_when_server_absent() {
    let (mut net, client, _) = network(1024, 0.0, 4);
    // Port 80 exists only on the server node; fetch from the router.
    let report = net.tcp_get(client, ip(10, 0, 0, 2), "/", SimDuration::from_secs(5));
    assert!(!report.success);
    assert_eq!(report.bytes, 0);
}

#[test]
fn fetch_times_out_on_blackhole() {
    let (mut net, client, _) = network(1024, 0.0, 5);
    let report = net.tcp_get(client, ip(203, 0, 113, 1), "/", SimDuration::from_secs(5));
    assert!(!report.success);
    assert!(report.ttfb.is_none());
}

#[test]
fn sequential_fetches_reuse_the_stack() {
    let (mut net, client, server) = network(4 * 1024, 0.02, 6);
    let mut totals = Vec::new();
    for _ in 0..10 {
        let report = net.tcp_get(client, server, "/page", SimDuration::from_secs(30));
        assert!(report.success);
        assert_eq!(report.bytes, 4 * 1024);
        totals.push(report.total.unwrap());
    }
    assert_eq!(totals.len(), 10);
}

#[test]
fn page_size_scales_transfer_time() {
    let fetch = |page: usize| {
        let (mut net, client, server) = network(page, 0.0, 7);
        net.tcp_get(client, server, "/", SimDuration::from_secs(60))
            .total
            .unwrap()
    };
    let small = fetch(MSS);
    let large = fetch(MSS * 40);
    assert!(large > small, "larger page not slower: {small} vs {large}");
}

#[test]
fn deterministic_under_seed() {
    let run = || {
        let (mut net, client, server) = network(16 * 1024, 0.1, 99);
        let r = net.tcp_get(client, server, "/", SimDuration::from_secs(60));
        (r.success, r.bytes, r.total.map(|t| t.as_micros()))
    };
    assert_eq!(run(), run());
}
