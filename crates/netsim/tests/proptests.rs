//! Property-based tests for netsim: routing invariants over random
//! connected graphs, prefix algebra, NAT translation round-trips, and
//! latency-model bounds.

use netsim::addr::Prefix;
use netsim::latency::LatencyModel;
use netsim::middlebox::Nat;
use netsim::packet::Packet;
use netsim::route::RouteTable;
use netsim::time::SimDuration;
use netsim::topo::{Asn, Coord, NodeId, NodeKind, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

/// A random connected topology: a spanning chain plus random extra edges.
fn arb_topology() -> impl Strategy<Value = (Topology, usize)> {
    (
        2usize..24,
        proptest::collection::vec((any::<u8>(), any::<u8>(), 1u64..50), 0..30),
    )
        .prop_map(|(n, extra)| {
            let mut t = Topology::new();
            let nodes: Vec<NodeId> = (0..n)
                .map(|i| {
                    t.add_node(
                        format!("n{i}"),
                        NodeKind::Router,
                        Asn(1),
                        Coord::default(),
                        vec![Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)],
                    )
                })
                .collect();
            for i in 1..n {
                t.add_link(nodes[i - 1], nodes[i], LatencyModel::constant_ms(1));
            }
            for (a, b, w) in extra {
                let (a, b) = (a as usize % n, b as usize % n);
                if a != b {
                    t.add_link(
                        nodes[a],
                        nodes[b],
                        LatencyModel::Constant(SimDuration::from_millis(w)),
                    );
                }
            }
            (t, n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn routing_always_terminates_at_destination((topo, n) in arb_topology()) {
        let rt = RouteTable::build(&topo);
        for s in 0..n {
            for d in 0..n {
                let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
                prop_assert!(rt.reachable(src, dst), "connected graph must be fully reachable");
                let path = rt.path(src, dst).expect("path exists");
                prop_assert_eq!(*path.first().unwrap(), src);
                prop_assert_eq!(*path.last().unwrap(), dst);
                prop_assert!(path.len() <= n, "path visits a node twice");
            }
        }
    }

    #[test]
    fn routing_distance_is_symmetric_and_triangular((topo, n) in arb_topology()) {
        let rt = RouteTable::build(&topo);
        for s in 0..n {
            for d in 0..n {
                let (a, b) = (NodeId(s as u32), NodeId(d as u32));
                prop_assert_eq!(rt.dist(a, b), rt.dist(b, a), "symmetric weights");
                // Triangle inequality through every intermediate node.
                for m in 0..n {
                    let mid = NodeId(m as u32);
                    prop_assert!(
                        rt.dist(a, b) <= rt.dist(a, mid).saturating_add(rt.dist(mid, b)),
                        "triangle violated"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_contains_its_own_addresses(octets in any::<[u8; 4]>(), len in 0u8..=32) {
        let addr = Ipv4Addr::from(octets);
        let p = Prefix::new(addr, len);
        prop_assert!(p.contains(addr));
        prop_assert!(p.contains(p.network()));
        // The i-th address is inside for small i.
        if p.size() > 1 {
            prop_assert!(p.contains(p.addr(1)));
        }
        // A /len prefix of the network address is the same prefix.
        prop_assert_eq!(Prefix::new(p.network(), len), p);
    }

    #[test]
    fn nat_round_trips_arbitrary_udp_flows(
        inside_host in 1u8..=250,
        port in 1024u16..60000,
        dst in any::<[u8; 4]>(),
    ) {
        let dst = Ipv4Addr::from(dst);
        // Keep the destination outside the inside prefix.
        prop_assume!(dst.octets()[0] != 10);
        let mut nat = Nat::new(vec!["10.0.0.0/8".parse().unwrap()], Ipv4Addr::new(66, 1, 1, 1));
        let src = Ipv4Addr::new(10, 3, 9, inside_host);
        let out = Packet::udp(src, port, dst, 53, vec![1]);
        let xlated = nat.translate(out).expect("outbound translates");
        prop_assert_eq!(xlated.src, Ipv4Addr::new(66, 1, 1, 1));
        let pub_port = match xlated.transport {
            netsim::packet::Transport::Udp { src_port, .. } => src_port,
            _ => unreachable!(),
        };
        let back = Packet::udp(dst, 53, Ipv4Addr::new(66, 1, 1, 1), pub_port, vec![2]);
        let restored = nat.translate(back).expect("inbound restores");
        prop_assert_eq!(restored.dst, src);
        match restored.transport {
            netsim::packet::Transport::Udp { dst_port, .. } => prop_assert_eq!(dst_port, port),
            _ => unreachable!(),
        }
    }

    #[test]
    fn latency_models_never_sample_below_their_floor(
        mean_ms in 1u64..500,
        sd_ms in 1u64..200,
        floor_ms in 0u64..100,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel::Normal {
            mean: SimDuration::from_millis(mean_ms),
            std_dev: SimDuration::from_millis(sd_ms),
            floor: SimDuration::from_millis(floor_ms),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(model.sample(&mut rng) >= SimDuration::from_millis(floor_ms));
        }
        let log = LatencyModel::LogNormal {
            mu: (mean_ms as f64 * 1000.0).max(1.0).ln(),
            sigma: 0.7,
            floor: SimDuration::from_millis(floor_ms),
        };
        for _ in 0..64 {
            prop_assert!(log.sample(&mut rng) >= SimDuration::from_millis(floor_ms));
        }
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
        use netsim::time::SimTime;
        let t = SimTime::from_micros(a);
        let dur = SimDuration::from_micros(d);
        let t2 = t + dur;
        prop_assert_eq!(t2 - t, dur);
        prop_assert_eq!(t2.since(t), dur);
        prop_assert_eq!(t.since(t2), SimDuration::ZERO);
    }
}
