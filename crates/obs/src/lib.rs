#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `obs` — the workspace's two-plane observability subsystem.
//!
//! **Sim plane** ([`sim`]): deterministic, typed instruments (counters,
//! high-water gauges, power-of-two histograms over sim-time micros) keyed
//! by `(static name, sorted labels)`. Registry contents are part of the
//! byte-identical-replay contract: the same seed and config produce the
//! same exported bytes for every thread count. Nothing in this plane may
//! read the wall clock or any other host state.
//!
//! **Host plane** ([`host`]): explicitly *non*-deterministic wall-clock
//! stage profiling (build/campaign timings, events/sec, shard imbalance)
//! for the driver binaries only. Host-plane readings are never serialized
//! into `results/`; detlint rule D7 fences this module out of every crate
//! except `repro` and `bench`.
//!
//! The crate is dependency-free (std only), like the rest of the
//! substrate.

pub mod hash;
pub mod host;
pub mod sim;

pub use hash::sha256_hex;
pub use sim::{Gauge, Histogram, Registry};
