//! The deterministic sim-plane registry: typed instruments keyed by
//! `(static name, sorted labels)`.
//!
//! Everything here is part of the byte-identical-replay contract:
//!
//! * metric names are `&'static str` (detlint D7 rejects dynamic names at
//!   the call site), so the key space is fixed at compile time;
//! * labels live in a `BTreeMap`, so key order — and therefore export
//!   order — is canonical;
//! * instruments hold integers only (counts, sim-time micros); no floats
//!   accumulate, so merge order cannot change low bits;
//! * merging is commutative and associative (counter/histogram addition,
//!   gauge max), so per-shard registries can be folded in canonical shard
//!   order and the result never depends on thread count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sorted label set attached to an instrument.
pub type Labels = BTreeMap<&'static str, String>;

/// Instrument key: static metric name plus canonicalized labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name (static: the D7 lint rejects dynamic names).
    pub name: &'static str,
    /// Label set, already sorted by construction.
    pub labels: Labels,
}

impl Key {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
        Key {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
        }
    }
}

/// A gauge sample with high-water tracking: `set` records the latest value
/// and the largest value ever set. Merging takes the maximum of both (the
/// fleet-wide peak), which is order-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently set value.
    pub value: u64,
    /// Largest value ever set.
    pub high_water: u64,
}

impl Gauge {
    fn set(&mut self, value: u64) {
        self.value = value;
        self.high_water = self.high_water.max(value);
    }

    fn merge(&mut self, other: &Gauge) {
        self.value = self.value.max(other.value);
        self.high_water = self.high_water.max(other.high_water);
    }
}

/// Number of histogram buckets: one per bit length of a `u64` sample,
/// plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over `u64` samples (sim-time micros, queue depths, …) with
/// fixed power-of-two bucket edges: bucket `i` counts samples `v` with
/// `v < 2^i` and (for `i > 0`) `v >= 2^(i-1)`. Fixed edges mean merging is
/// plain element-wise addition — no edge renegotiation, no floats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples observed.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The bucket a sample lands in: its bit length (0 for the sample `0`).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The exclusive upper edge of bucket `i`: `2^i`.
pub fn bucket_edge(i: usize) -> u128 {
    1u128 << i.min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Count in bucket `i` (samples with bit length `i`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Folds another histogram in (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The exclusive upper edge of the bucket holding the `num/den`
    /// quantile (integer arithmetic: the first bucket whose cumulative
    /// count reaches `ceil(count · num / den)`). Returns 0 for an empty
    /// histogram.
    pub fn quantile_edge(&self, num: u64, den: u64) -> u128 {
        if self.count == 0 || den == 0 {
            return 0;
        }
        let threshold = (self.count as u128 * num as u128).div_ceil(den as u128);
        let mut cumulative: u128 = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b as u128;
            if cumulative >= threshold {
                return bucket_edge(i);
            }
        }
        bucket_edge(HISTOGRAM_BUCKETS - 1)
    }

    /// Iterator over `(bucket index, count)` for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (i, b))
    }
}

/// The sim-plane metric registry: every instrument of one campaign (or one
/// shard of it), exported as `results/metrics.json` and the `metrics`
/// summary table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str, labels: &[(&'static str, &str)]) {
        // detlint: allow(D7) -- registry-internal delegation; the
        // static-name rule binds at instrumentation call sites
        self.inc_by(name, labels, 1);
    }

    /// Increments a counter by `delta`.
    pub fn inc_by(&mut self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        *self.counters.entry(Key::new(name, labels)).or_insert(0) += delta;
    }

    /// Sets a gauge, tracking its high-water mark.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        self.gauges
            .entry(Key::new(name, labels))
            .or_default()
            .set(value);
    }

    /// Records one histogram sample (sim-time micros or any other `u64`).
    pub fn observe_us(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: u64) {
        self.histograms
            .entry(Key::new(name, labels))
            .or_default()
            .observe(v);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter_value(&self, name: &str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && labels_match(&k.labels, labels))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of a counter across all of its label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// A gauge reading, if the gauge was ever set.
    pub fn gauge_value(&self, name: &str, labels: &[(&'static str, &str)]) -> Option<Gauge> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && labels_match(&k.labels, labels))
            .map(|(_, g)| *g)
    }

    /// Fleet-wide high-water mark of a gauge across all label sets.
    pub fn gauge_peak(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, g)| g.high_water)
            .max()
            .unwrap_or(0)
    }

    /// A histogram, if any sample was recorded under the key.
    pub fn histogram(&self, name: &str, labels: &[(&'static str, &str)]) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && labels_match(&k.labels, labels))
            .map(|(_, h)| h)
    }

    /// Number of distinct instruments.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the registry holds no instruments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds another registry in: counters and histograms add, gauges take
    /// the maximum. Commutative and associative, so per-shard registries
    /// merged in canonical shard order yield a thread-count-invariant
    /// result.
    pub fn merge_from(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            self.gauges.entry(k.clone()).or_default().merge(g);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Serializes every instrument as deterministic JSON: keys in
    /// `BTreeMap` order, integers only, no host state. The exported bytes
    /// are part of the replay contract.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [\n");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("    {{{}, \"value\": {v}}}", json_key(k)))
            .collect();
        out.push_str(&counters.join(",\n"));
        out.push_str("\n  ],\n  \"gauges\": [\n");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, g)| {
                format!(
                    "    {{{}, \"value\": {}, \"high_water\": {}}}",
                    json_key(k),
                    g.value,
                    g.high_water
                )
            })
            .collect();
        out.push_str(&gauges.join(",\n"));
        out.push_str("\n  ],\n  \"histograms\": [\n");
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h
                    .nonzero_buckets()
                    .map(|(i, c)| format!("{{\"lt\": {}, \"count\": {c}}}", bucket_edge(i)))
                    .collect();
                format!(
                    "    {{{}, \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                    json_key(k),
                    h.count,
                    h.sum,
                    buckets.join(", ")
                )
            })
            .collect();
        out.push_str(&histograms.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the rustc-style summary table: one aligned row per
    /// instrument, histograms summarized as count/p50/p99 edges.
    pub fn render_table(&self, title: &str) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((display_key(k), v.to_string()));
        }
        for (k, g) in &self.gauges {
            rows.push((
                display_key(k),
                format!("{} (high-water {})", g.value, g.high_water),
            ));
        }
        for (k, h) in &self.histograms {
            rows.push((
                display_key(k),
                format!(
                    "n={} p50<{} p99<{}",
                    h.count,
                    h.quantile_edge(1, 2),
                    h.quantile_edge(99, 100)
                ),
            ));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = format!("== {title} ==\n");
        for (k, v) in rows {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        out
    }
}

fn labels_match(have: &Labels, want: &[(&'static str, &str)]) -> bool {
    have.len() == want.len()
        && want
            .iter()
            .all(|(k, v)| have.get(k).map(String::as_str) == Some(*v))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_key(k: &Key) -> String {
    let labels: Vec<String> = k
        .labels
        .iter()
        .map(|(lk, lv)| format!("\"{}\": \"{}\"", json_escape(lk), json_escape(lv)))
        .collect();
    format!(
        "\"name\": \"{}\", \"labels\": {{{}}}",
        json_escape(k.name),
        labels.join(", ")
    )
}

fn display_key(k: &Key) -> String {
    if k.labels.is_empty() {
        return k.name.to_string();
    }
    let labels: Vec<String> = k
        .labels
        .iter()
        .map(|(lk, lv)| format!("{lk}={lv}"))
        .collect();
    format!("{}{{{}}}", k.name, labels.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges_are_powers_of_two() {
        // Bucket i holds samples with bit length i: 2^(i-1) <= v < 2^i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_edge(i), 1u128 << i);
        }
        // Every sample lands strictly below its bucket's edge and (when
        // nonzero) at or above the previous edge.
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 7, 8, 1000, u64::MAX] {
            h.observe(v);
            let i = bucket_index(v);
            assert!((v as u128) < bucket_edge(i));
            if i > 0 {
                assert!(v as u128 >= bucket_edge(i - 1));
            }
        }
        assert_eq!(h.count, 7);
    }

    #[test]
    fn histogram_quantiles_walk_the_buckets() {
        let mut h = Histogram::default();
        for v in [1u64, 1, 1, 100] {
            h.observe(v);
        }
        assert_eq!(h.quantile_edge(1, 2), 2); // p50 in the `<2` bucket
        assert_eq!(h.quantile_edge(99, 100), 128); // p99 reaches the 100
        assert_eq!(Histogram::default().quantile_edge(1, 2), 0);
    }

    #[test]
    fn gauge_tracks_high_water_and_merges_by_max() {
        let mut reg = Registry::new();
        reg.gauge_set("queue", &[], 5);
        reg.gauge_set("queue", &[], 9);
        reg.gauge_set("queue", &[], 3);
        let g = reg.gauge_value("queue", &[]).unwrap();
        assert_eq!(g.value, 3);
        assert_eq!(g.high_water, 9);

        let mut other = Registry::new();
        other.gauge_set("queue", &[], 7);
        reg.merge_from(&other);
        let g = reg.gauge_value("queue", &[]).unwrap();
        assert_eq!(g.value, 7, "merge takes the max current value");
        assert_eq!(g.high_water, 9, "merge keeps the fleet peak");
        assert_eq!(reg.gauge_peak("queue"), 9);
    }

    #[test]
    fn merge_is_commutative_and_export_order_canonical() {
        let shard = |name: &'static str, n: u64| {
            let mut r = Registry::new();
            r.inc_by("events", &[("carrier", name)], n);
            r.inc_by("events.total", &[], n);
            r.observe_us("lookup_us", &[], n);
            r
        };
        let a = shard("att", 10);
        let b = shard("verizon", 32);
        let mut ab = Registry::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = Registry::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json(), "export order must be canonical");
        assert_eq!(ab.counter_total("events"), 42);
        assert_eq!(ab.counter_value("events", &[("carrier", "att")]), 10);
        assert_eq!(ab.counter_value("events.total", &[]), 42);
        assert_eq!(ab.histogram("lookup_us", &[]).unwrap().count, 2);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut reg = Registry::new();
        reg.inc_by("net.events", &[("carrier", "a\"b")], 3);
        reg.gauge_set("depth", &[], 2);
        reg.observe_us("t_us", &[], 5);
        let json = reg.to_json();
        assert!(json.contains("\"name\": \"net.events\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("\"high_water\": 2"));
        assert!(json.contains("{\"lt\": 8, \"count\": 1}"));
        assert_eq!(json, reg.clone().to_json());
        // Empty registry still serializes to a well-formed skeleton.
        let empty = Registry::new().to_json();
        assert!(empty.contains("\"counters\""));
        assert!(empty.ends_with("}\n"));
    }

    #[test]
    fn table_renders_every_instrument() {
        let mut reg = Registry::new();
        reg.inc("experiments", &[("carrier", "att")]);
        reg.gauge_set("queue.depth", &[], 4);
        reg.observe_us("lookup_us", &[], 900);
        let table = reg.render_table("campaign vitals");
        assert!(table.starts_with("== campaign vitals =="));
        assert!(table.contains("experiments{carrier=att}"));
        assert!(table.contains("(high-water 4)"));
        assert!(table.contains("n=1 p50<1024"));
    }
}
