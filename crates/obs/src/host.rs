//! The host plane: wall-clock stage profiling for the driver binaries.
//!
//! Everything in this module is **explicitly non-deterministic** — it
//! reads the host's monotonic clock and reports throughput that varies
//! with the machine, thread count, and load. It exists so `repro` and
//! `bench` can report build/campaign timings without leaking wall-clock
//! text into parseable output: host-plane readings go to stderr via
//! [`Profiler::report`] and are never serialized into `results/`.
//!
//! detlint rule D7 makes this module unusable outside `repro`/`bench`;
//! the D2 allow-markers below are the audited exception that quarantines
//! the wall clock here instead of scattering `Instant::now()` through
//! driver code.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A running wall-clock stage. Create with [`Stage::begin`], finish with
/// [`Stage::end`].
#[derive(Debug)]
pub struct Stage {
    name: &'static str,
    start: Instant,
}

impl Stage {
    /// Starts timing a named stage.
    pub fn begin(name: &'static str) -> Stage {
        Stage {
            name,
            // detlint: allow(D2) -- the host plane is the one audited
            // wall-clock site; D7 keeps it inside repro/bench
            start: Instant::now(),
        }
    }

    /// Stops the clock and yields the completed span.
    pub fn end(self) -> Span {
        Span {
            name: self.name,
            wall: self.start.elapsed(),
        }
    }
}

/// A completed stage: name plus wall-clock duration.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Stage name.
    pub name: &'static str,
    /// Wall-clock time the stage took.
    pub wall: Duration,
}

impl Span {
    /// Items per wall-clock second (0 when the span was too fast to
    /// measure).
    pub fn rate(&self, items: u64) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        items as f64 / secs
    }
}

/// One reported line: a span, optionally with a throughput annotation.
#[derive(Debug, Clone)]
struct Entry {
    span: Span,
    rates: Vec<(u64, &'static str)>,
}

/// Collects completed stages and renders the stderr profile report.
///
/// Construct with `Profiler::new(!quiet)`: a disabled profiler still
/// accepts spans (so driver code stays branch-free) but [`Profiler::report`]
/// returns an empty string.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    entries: Vec<Entry>,
    notes: Vec<String>,
}

impl Profiler {
    /// A profiler that reports when `enabled`, stays silent otherwise.
    pub fn new(enabled: bool) -> Profiler {
        Profiler {
            enabled,
            entries: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether reporting is enabled (`--quiet` turns it off).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a completed span; returns its wall time.
    pub fn record(&mut self, span: Span) -> Duration {
        let wall = span.wall;
        self.entries.push(Entry {
            span,
            rates: Vec::new(),
        });
        wall
    }

    /// Records a span with one or more throughput annotations
    /// (`(items, unit)` pairs, e.g. `(events, "events")`).
    pub fn record_with_rates(&mut self, span: Span, rates: &[(u64, &'static str)]) -> Duration {
        let wall = span.wall;
        self.entries.push(Entry {
            span,
            rates: rates.to_vec(),
        });
        wall
    }

    /// Records the peak shard imbalance of a per-shard load vector: the
    /// busiest shard's share relative to a perfectly even split.
    pub fn shard_imbalance(&mut self, what: &'static str, per_shard: &[u64]) {
        if per_shard.is_empty() {
            return;
        }
        let total: u64 = per_shard.iter().sum();
        if total == 0 {
            return;
        }
        let (peak_shard, peak) = per_shard
            .iter()
            .enumerate()
            .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
            .map(|(i, v)| (i, *v))
            .unwrap_or((0, 0));
        let even = total as f64 / per_shard.len() as f64;
        self.notes.push(format!(
            "peak shard imbalance ({what}): {:.2}x even split (shard {peak_shard})",
            peak as f64 / even
        ));
    }

    /// Adds a free-form host-plane note to the report.
    pub fn note(&mut self, text: String) {
        self.notes.push(text);
    }

    /// Renders the profile report (empty when disabled). One line per
    /// stage plus the collected notes — stderr material, never artifact
    /// text.
    pub fn report(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let width = self
            .entries
            .iter()
            .map(|e| e.span.name.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            let _ = write!(
                out,
                "  {:<width$}  {:>8.2}s",
                e.span.name,
                e.span.wall.as_secs_f64()
            );
            for (items, unit) in &e.rates {
                let _ = write!(out, "  {} {unit}/s", human_rate(e.span.rate(*items)));
            }
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        out
    }
}

/// Compact rate rendering: `912`, `4.1k`, `7.6M`.
fn human_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_measures_and_reports() {
        let mut prof = Profiler::new(true);
        let stage = Stage::begin("build");
        std::thread::sleep(Duration::from_millis(2));
        let span = stage.end();
        assert!(span.wall >= Duration::from_millis(1));
        prof.record(span);
        let campaign = Stage::begin("campaign").end();
        prof.record_with_rates(campaign, &[(1_000, "events")]);
        let report = prof.report();
        assert!(report.contains("build"));
        assert!(report.contains("campaign"));
        assert!(report.contains("events/s"));
    }

    #[test]
    fn disabled_profiler_reports_nothing() {
        let mut prof = Profiler::new(false);
        prof.record(Stage::begin("x").end());
        prof.shard_imbalance("events", &[1, 2, 3]);
        assert!(prof.report().is_empty());
        assert!(!prof.enabled());
    }

    #[test]
    fn imbalance_identifies_the_busiest_shard() {
        let mut prof = Profiler::new(true);
        prof.shard_imbalance("events", &[100, 100, 400, 100]);
        let report = prof.report();
        assert!(report.contains("(shard 2)"), "{report}");
        assert!(report.contains("2.29x"), "{report}");
        // Degenerate inputs are ignored, not divided by.
        prof.shard_imbalance("events", &[]);
        prof.shard_imbalance("events", &[0, 0]);
    }

    #[test]
    fn rates_render_human_units() {
        assert_eq!(human_rate(912.4), "912");
        assert_eq!(human_rate(4_100.0), "4.1k");
        assert_eq!(human_rate(7_600_000.0), "7.6M");
        let span = Span {
            name: "x",
            wall: Duration::ZERO,
        };
        assert_eq!(span.rate(10), 0.0);
    }
}
