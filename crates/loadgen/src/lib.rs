#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `loadgen` — the serving plane's deterministic load generator.
//!
//! Builds per-carrier query scripts from the world's own seed (lane
//! [`measure::world::lane::SERVE`], so serving never perturbs campaign
//! replay), drives them against a live [`serve::DnsServer`] over real
//! loopback sockets at a target QPS, and — in verify mode — replays the
//! exact wire transcript into a second [`serve::ServeCore`] built from the
//! same [`WorldConfig`], asserting every answer byte-equal. That replay is
//! the ground-truth cross-check: the live server and the batch resolver
//! are the same deterministic code, so any divergence is a bug, not noise.
//!
//! [`WorldConfig`]: measure::WorldConfig

pub mod chaos;
pub mod driver;
pub mod report;
pub mod script;

pub use chaos::{ChaosAction, ChaosProfile};
pub use driver::{run, DriverConfig, RunStats};
pub use report::render_profile_json;
pub use script::{build_script, MixConfig, PlannedQuery, Script};

/// Returns the placeholder-free version marker used by integration tests to
/// confirm the crate wires together.
pub const CRATE_NAME: &str = "loadgen";
