//! Host-plane profile export: the run's qps, latency percentiles, and
//! outcome taxonomy as a small hand-rolled JSON document (the artifact CI
//! uploads from the serve smoke job).

use crate::driver::RunStats;

/// Renders the host-plane serve profile. Every number here is wall-clock
/// derived and therefore host-plane only — it is never merged into the
/// deterministic `metrics.json` replay contract.
pub fn render_profile_json(stats: &RunStats) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"sent\": {},\n", stats.sent));
    out.push_str(&format!("  \"answered\": {},\n", stats.answered));
    out.push_str(&format!("  \"tc_retries\": {},\n", stats.tc_retries));
    out.push_str(&format!("  \"wire_timeouts\": {},\n", stats.wire_timeouts));
    out.push_str(&format!("  \"mismatches\": {},\n", stats.mismatches));
    out.push_str(&format!(
        "  \"chaos_injected\": {},\n",
        stats.chaos_injected
    ));
    out.push_str(&format!("  \"shed_replies\": {},\n", stats.shed_replies));
    out.push_str(&format!("  \"shed_retries\": {},\n", stats.shed_retries));
    out.push_str(&format!(
        "  \"evictions_observed\": {},\n",
        stats.evictions_observed
    ));
    out.push_str(&format!(
        "  \"chaos_unanswered\": {},\n",
        stats.chaos_unanswered
    ));
    out.push_str(&format!("  \"wall_secs\": {:.3},\n", stats.wall_secs));
    out.push_str(&format!("  \"qps\": {:.1},\n", stats.qps()));
    out.push_str(&format!(
        "  \"latency_p50_us\": {},\n",
        stats.latency_percentile_us(50)
    ));
    out.push_str(&format!(
        "  \"latency_p99_us\": {},\n",
        stats.latency_percentile_us(99)
    ));
    out.push_str("  \"outcomes\": {");
    let rows: Vec<String> = stats
        .outcomes
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    out.push_str(&rows.join(", "));
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Registry;
    use std::collections::BTreeMap;

    #[test]
    fn profile_json_carries_the_headline_numbers() {
        let mut outcomes = BTreeMap::new();
        outcomes.insert("noerror".to_string(), 9u64);
        outcomes.insert("servfail".to_string(), 1u64);
        let stats = RunStats {
            sent: 11,
            answered: 10,
            tc_retries: 1,
            wire_timeouts: 0,
            mismatches: 0,
            chaos_injected: 4,
            shed_replies: 2,
            shed_retries: 1,
            evictions_observed: 3,
            chaos_unanswered: 0,
            outcomes,
            latencies_us: vec![100, 200, 300, 400],
            wall_secs: 2.0,
            registry: Registry::default(),
        };
        let json = render_profile_json(&stats);
        assert!(json.contains("\"answered\": 10"));
        assert!(json.contains("\"qps\": 5.0"));
        assert!(json.contains("\"noerror\": 9"));
        assert!(json.contains("\"latency_p50_us\": 200"));
        assert!(json.contains("\"chaos_injected\": 4"));
        assert!(json.contains("\"evictions_observed\": 3"));
    }
}
