//! Seed-lane-derived query scripts: the deterministic traffic mix the
//! generator replays. Per-carrier volumes follow device populations, the
//! domain draw is Zipf-ish over the paper's 9-domain catalog, and a
//! configurable fraction of queries are cache-busting nonce names under
//! the probe zone (forcing resolver cache misses, like the campaign's
//! whoami probes do).

use cdnsim::catalog::mobile_domains;
use dnswire::builder::QueryBuilder;
use dnswire::name::DnsName;
use dnswire::rdata::RecordType;
use measure::world::{derive_seed, lane};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::Endpoints;

/// The probe zone every world builds (`measure::world`); nonce queries
/// live under it so the whoami authority answers them uncached.
const PROBE_ZONE: &str = "whoami.probe.example";

/// Traffic-mix knobs.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Total queries across all carriers.
    pub queries: u64,
    /// Cache-busting fraction in thousandths (50 = 5% forced misses).
    pub miss_per_mille: u32,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            queries: 10_000,
            miss_per_mille: 50,
        }
    }
}

/// One scripted wire query, pre-encoded.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Wire transaction id.
    pub id: u16,
    /// The name queried (reporting).
    pub qname: DnsName,
    /// Encoded RFC 1035 query bytes (EDNS size advertised, RD set).
    pub wire: Vec<u8>,
}

/// Per-carrier query sequences, in injection order.
#[derive(Debug, Clone)]
pub struct Script {
    /// `per_carrier[shard]` is shard's queries in send order.
    pub per_carrier: Vec<Vec<PlannedQuery>>,
}

impl Script {
    /// Total queries across carriers.
    pub fn total(&self) -> u64 {
        self.per_carrier.iter().map(|v| v.len() as u64).sum()
    }
}

/// Splits `total` across carriers proportionally to device populations
/// (largest-remainder), so the mix mirrors Table 1's fleet shape.
fn carrier_volumes(total: u64, devices: &[usize]) -> Vec<u64> {
    let fleet: u64 = devices.iter().map(|&d| d as u64).sum::<u64>().max(1);
    let mut out: Vec<u64> = devices.iter().map(|&d| total * d as u64 / fleet).collect();
    let mut assigned: u64 = out.iter().sum();
    // Hand the remainder out round-robin from carrier 0 (deterministic).
    let n = out.len().max(1);
    let mut i = 0;
    while assigned < total && !out.is_empty() {
        out[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    out
}

/// Builds the full script for the world described by `eps`.
pub fn build_script(eps: &Endpoints, mix: &MixConfig) -> Script {
    let catalog = mobile_domains();
    // Zipf-ish weights over the catalog: rank r gets weight 1000/(r+1).
    let weights: Vec<u64> = (0..catalog.len()).map(|r| 1_000 / (r as u64 + 1)).collect();
    let weight_sum: u64 = weights.iter().sum();
    let devices: Vec<usize> = eps.carriers.iter().map(|c| c.devices).collect();
    let volumes = carrier_volumes(mix.queries, &devices);

    let probe_zone = DnsName::parse(PROBE_ZONE)
        .unwrap_or_else(|_| unreachable!("static probe zone name is valid"));
    let mut per_carrier = Vec::with_capacity(eps.carriers.len());
    for (shard, &volume) in volumes.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(derive_seed(eps.config.seed, lane::SERVE, shard as u64));
        let mut queries = Vec::with_capacity(volume as usize);
        for _ in 0..volume {
            let miss: u32 = rng.gen_range(0..1_000);
            let qname = if miss < mix.miss_per_mille {
                let nonce: u64 = rng.gen();
                match probe_zone.child(&format!("q{nonce:016x}")) {
                    Ok(n) => n,
                    Err(_) => probe_zone.clone(),
                }
            } else {
                let mut draw = rng.gen_range(0..weight_sum);
                let mut pick = 0;
                for (i, &w) in weights.iter().enumerate() {
                    if draw < w {
                        pick = i;
                        break;
                    }
                    draw -= w;
                }
                catalog[pick].domain.clone()
            };
            let id: u16 = rng.gen();
            if let Some(q) = encode(id, &qname) {
                queries.push(PlannedQuery { id, qname, wire: q });
            }
        }
        per_carrier.push(queries);
    }
    Script { per_carrier }
}

fn encode(id: u16, qname: &DnsName) -> Option<Vec<u8>> {
    let mut query = QueryBuilder::new(id, qname.to_string(), RecordType::A)
        .recursion_desired(true)
        .build()
        .ok()?;
    query.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
    query.encode().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use measure::WorldConfig;
    use serve::CarrierEndpoint;

    fn fake_endpoints(seed: u64, devices: &[usize]) -> Endpoints {
        Endpoints {
            config: WorldConfig::quick(seed),
            carriers: devices
                .iter()
                .enumerate()
                .map(|(i, &d)| CarrierEndpoint {
                    index: i,
                    name: format!("c{i}"),
                    udp: "127.0.0.1:1".parse().unwrap(),
                    tcp: "127.0.0.1:2".parse().unwrap(),
                    devices: d,
                })
                .collect(),
        }
    }

    #[test]
    fn scripts_are_deterministic_and_population_weighted() {
        let eps = fake_endpoints(42, &[30, 10]);
        let mix = MixConfig {
            queries: 400,
            miss_per_mille: 100,
        };
        let a = build_script(&eps, &mix);
        let b = build_script(&eps, &mix);
        assert_eq!(a.total(), 400);
        assert_eq!(a.per_carrier[0].len(), 300, "3:1 device split");
        assert_eq!(a.per_carrier[1].len(), 100);
        for (x, y) in a.per_carrier[0].iter().zip(&b.per_carrier[0]) {
            assert_eq!(x.wire, y.wire, "same seed must give identical scripts");
        }
        // Different seed, different script.
        let c = build_script(&fake_endpoints(43, &[30, 10]), &mix);
        assert_ne!(a.per_carrier[0][0].wire, c.per_carrier[0][0].wire);
    }

    #[test]
    fn miss_fraction_puts_nonces_under_the_probe_zone() {
        let eps = fake_endpoints(7, &[20]);
        let all_miss = build_script(
            &eps,
            &MixConfig {
                queries: 50,
                miss_per_mille: 1_000,
            },
        );
        for q in &all_miss.per_carrier[0] {
            assert!(
                q.qname.to_string().ends_with("whoami.probe.example"),
                "expected a probe-zone nonce, got {}",
                q.qname
            );
        }
        let no_miss = build_script(
            &eps,
            &MixConfig {
                queries: 50,
                miss_per_mille: 0,
            },
        );
        for q in &no_miss.per_carrier[0] {
            assert!(!q.qname.to_string().contains("probe.example"));
        }
    }
}
