//! The wire driver: sends scripted queries to a live server over real
//! loopback sockets (one thread per carrier, strictly one query in flight
//! per carrier so the server's per-shard injection order is exactly the
//! script order), then optionally replays the recorded transcript into a
//! ground-truth [`ServeCore`] and compares every answer byte-for-byte.

use dnssim::{frame, require_frame};
use dnswire::message::Message;
use obs::Registry;
use serve::{Clock, Endpoints, ServeCore, Transport, WallClock};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::time::Duration;

use crate::script::Script;

/// How long the driver waits for a UDP answer before resending. Generous:
/// the bridge serves carriers round-robin and a sim resolution can take a
/// few hundred microseconds of host work.
const WIRE_TIMEOUT: Duration = Duration::from_secs(5);
/// Resends of one query before the run is declared wedged.
const MAX_SENDS: u32 = 3;

/// Driver knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverConfig {
    /// Total target queries/second across all carriers (None = flat out).
    pub qps: Option<u64>,
    /// Replay the transcript into a ground-truth core and compare.
    pub verify: bool,
}

/// What one scripted query did on the wire.
#[derive(Debug, Clone)]
struct WireRecord {
    /// Times the UDP query was sent (each send reached the server's core
    /// once, so the truth replay must repeat the call).
    udp_sends: u32,
    /// Final UDP answer bytes (None = every send timed out).
    udp_reply: Option<Vec<u8>>,
    /// TCP retry answer, when the UDP answer came back truncated.
    tcp_reply: Option<Vec<u8>>,
    /// First send → final answer, wall micros.
    latency_us: u64,
}

/// Aggregated results of a run.
#[derive(Debug)]
pub struct RunStats {
    /// Wire sends (UDP sends + TCP retries).
    pub sent: u64,
    /// Scripted queries that got a final answer.
    pub answered: u64,
    /// TC-bit answers retried over TCP.
    pub tc_retries: u64,
    /// UDP sends that timed out on the wire.
    pub wire_timeouts: u64,
    /// Ground-truth mismatches (0 unless `verify`; any nonzero is a bug).
    pub mismatches: u64,
    /// Wire rcode taxonomy (`noerror`, `servfail`, ...) plus `timeout`.
    pub outcomes: BTreeMap<String, u64>,
    /// Wall-clock round-trip latencies, micros, in completion order.
    pub latencies_us: Vec<u64>,
    /// Wall seconds the wire phase took.
    pub wall_secs: f64,
    /// Host-side counters mirroring the fields above (profile export).
    pub registry: Registry,
}

impl RunStats {
    /// Achieved queries/second over the wire phase.
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.answered as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile latency in micros (sorts a copy).
    pub fn latency_percentile_us(&self, p: u64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as u64 - 1) * p / 100) as usize;
        sorted[idx]
    }
}

/// Drives `script` against the server at `eps`. With `cfg.verify`, builds
/// a ground-truth [`ServeCore`] from `eps.config` and replays the wire
/// transcript into it, counting byte mismatches.
pub fn run(eps: &Endpoints, script: &Script, cfg: &DriverConfig) -> std::io::Result<RunStats> {
    let clock = WallClock::new();
    let carriers = eps.carriers.len().max(1) as u64;
    let per_carrier_qps = cfg.qps.map(|q| (q / carriers).max(1));

    let start_us = clock.now_us();
    let mut transcripts: Vec<Vec<WireRecord>> = Vec::new();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for (shard, queries) in script.per_carrier.iter().enumerate() {
            let ep = &eps.carriers[shard];
            let clock_ref = &clock;
            handles
                .push(scope.spawn(move || drive_carrier(ep, queries, per_carrier_qps, clock_ref)));
        }
        for h in handles {
            match h.join() {
                Ok(Ok(t)) => transcripts.push(t),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(std::io::Error::other("carrier driver thread panicked")),
            }
        }
        Ok(())
    })?;
    let wall_secs = (clock.now_us() - start_us) as f64 / 1e6;

    // Aggregate the wire view.
    let mut stats = RunStats {
        sent: 0,
        answered: 0,
        tc_retries: 0,
        wire_timeouts: 0,
        mismatches: 0,
        outcomes: BTreeMap::new(),
        latencies_us: Vec::new(),
        wall_secs,
        registry: Registry::default(),
    };
    for transcript in &transcripts {
        for rec in transcript {
            stats.sent += rec.udp_sends as u64 + rec.tcp_reply.is_some() as u64;
            stats.wire_timeouts += (rec.udp_sends - 1) as u64;
            if rec.tcp_reply.is_some() {
                stats.tc_retries += 1;
            }
            let last = rec.tcp_reply.as_ref().or(rec.udp_reply.as_ref());
            match last {
                Some(bytes) => {
                    stats.answered += 1;
                    stats.latencies_us.push(rec.latency_us);
                    let label = match Message::decode(bytes) {
                        Ok(m) => rcode_label(&m),
                        Err(_) => "undecodable",
                    };
                    *stats.outcomes.entry(label.to_string()).or_insert(0) += 1;
                }
                None => {
                    stats.wire_timeouts += 1;
                    *stats.outcomes.entry("timeout".to_string()).or_insert(0) += 1;
                }
            }
        }
    }

    if cfg.verify {
        stats.mismatches = verify(eps, script, &transcripts);
    }

    let reg = &mut stats.registry;
    reg.inc_by("loadgen.sent", &[], stats.sent);
    reg.inc_by("loadgen.answered", &[], stats.answered);
    reg.inc_by("loadgen.tc_retries", &[], stats.tc_retries);
    reg.inc_by("loadgen.wire_timeouts", &[], stats.wire_timeouts);
    reg.inc_by("loadgen.mismatches", &[], stats.mismatches);
    for &us in &stats.latencies_us {
        reg.observe_us("loadgen.latency_us", &[], us);
    }
    Ok(stats)
}

fn rcode_label(m: &Message) -> &'static str {
    use dnswire::message::Rcode;
    match m.header.rcode {
        Rcode::NoError => "noerror",
        Rcode::ServFail => "servfail",
        Rcode::NxDomain => "nxdomain",
        _ => "other",
    }
}

/// One carrier's wire loop: strictly one in-flight query, so the server's
/// per-shard injection order is the script order.
fn drive_carrier(
    ep: &serve::CarrierEndpoint,
    queries: &[crate::script::PlannedQuery],
    qps: Option<u64>,
    clock: &WallClock,
) -> std::io::Result<Vec<WireRecord>> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.connect(ep.udp)?;
    sock.set_read_timeout(Some(WIRE_TIMEOUT))?;
    let mut buf = [0u8; 65_535];
    let mut transcript = Vec::with_capacity(queries.len());
    let epoch = clock.now_us();
    for (i, q) in queries.iter().enumerate() {
        if let Some(rate) = qps {
            clock.sleep_until(epoch + i as u64 * 1_000_000 / rate);
        }
        let sent_at = clock.now_us();
        let mut udp_sends = 0u32;
        let mut udp_reply = None;
        'sends: while udp_sends < MAX_SENDS {
            sock.send(&q.wire)?;
            udp_sends += 1;
            loop {
                match sock.recv(&mut buf) {
                    Ok(n) => {
                        // Discard stale datagrams (an answer to an earlier
                        // send that already timed out) by transaction id.
                        let id_matches = dnswire::message::MessageView::new(&buf[..n])
                            .is_ok_and(|v| v.id() == q.id);
                        if id_matches {
                            udp_reply = Some(buf[..n].to_vec());
                            break 'sends;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // TC bit set → retry the identical query over TCP, like a stub.
        let truncated = udp_reply
            .as_ref()
            .and_then(|b| Message::decode(b).ok())
            .is_some_and(|m| m.header.flags.truncated);
        let tcp_reply = if truncated {
            tcp_retry(ep, &q.wire).ok()
        } else {
            None
        };
        transcript.push(WireRecord {
            udp_sends,
            udp_reply,
            tcp_reply,
            latency_us: clock.now_us() - sent_at,
        });
    }
    Ok(transcript)
}

/// One length-prefixed query/answer exchange over a fresh TCP connection.
fn tcp_retry(ep: &serve::CarrierEndpoint, wire: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(ep.tcp)?;
    stream.set_read_timeout(Some(WIRE_TIMEOUT))?;
    let framed = frame(wire).map_err(std::io::Error::other)?;
    stream.write_all(&framed)?;
    let mut data = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        match require_frame(&data) {
            Ok(payload) => return Ok(payload.to_vec()),
            Err(_) => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::other("server closed mid-frame"));
                }
                data.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

/// Replays the wire transcript into a fresh ground-truth core and counts
/// byte mismatches. The truth core sees exactly the calls the server's
/// bridge made: one `answer()` per UDP send (resends included), plus one
/// TCP `answer()` wherever the wire did a TC retry.
fn verify(eps: &Endpoints, script: &Script, transcripts: &[Vec<WireRecord>]) -> u64 {
    let mut truth = ServeCore::new(eps.config.clone());
    let mut mismatches = 0u64;
    for (shard, transcript) in transcripts.iter().enumerate() {
        for (qi, rec) in transcript.iter().enumerate() {
            let wire = &script.per_carrier[shard][qi].wire;
            let mut expect_udp = None;
            for _ in 0..rec.udp_sends {
                expect_udp = truth.answer(shard, Transport::Udp, wire).ok();
            }
            if let (Some(got), Some(want)) = (rec.udp_reply.as_ref(), expect_udp.as_ref()) {
                if got != want {
                    mismatches += 1;
                }
            }
            if rec.tcp_reply.is_some() {
                let expect_tcp = truth.answer(shard, Transport::Tcp, wire).ok();
                if rec.tcp_reply != expect_tcp {
                    mismatches += 1;
                }
            }
        }
    }
    mismatches
}
