//! The wire driver: sends scripted queries to a live server over real
//! loopback sockets (one thread per carrier, strictly one exchange in
//! flight per carrier so the server's per-shard injection order is exactly
//! the driver's send order), optionally interleaved with planned chaos,
//! then — in verify mode — replays the recorded transcript into a
//! ground-truth [`ServeCore`] and compares every answer byte-for-byte.
//!
//! The transcript is a flat per-carrier sequence of *exchanges*: every
//! datagram or TCP frame that reached the server's bridge, scripted or
//! chaos, in send order. Verification walks it with one rule: a
//! header-only REFUSED ([`serve::is_shed_reply`]) was shed by the front
//! end before touching the sim, so it is skipped; every other exchange is
//! replayed through [`ServeCore::handle`] and, when a reply was captured,
//! must match byte-for-byte. TCP connections the server *evicts*
//! (oversized frames, stalled writers) never produce an exchange at all —
//! the defense fires before the bridge sees anything.

use dnssim::{frame, require_frame};
use dnswire::message::Message;
use obs::Registry;
use serve::{
    classify, is_shed_reply, Clock, Endpoints, ServeCore, Transport, WallClock, WireClass,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::time::Duration;

use crate::chaos::{plan_carrier, ChaosAction, ChaosProfile};
use crate::script::Script;

/// How long the driver waits for a UDP answer before resending. Generous:
/// the bridge serves carriers round-robin and a sim resolution can take a
/// few hundred microseconds of host work.
const WIRE_TIMEOUT: Duration = Duration::from_secs(5);
/// Resends of one query before the run is declared wedged.
const MAX_SENDS: u32 = 3;
/// How long the driver waits on replies owed to chaos traffic. Shorter
/// than [`WIRE_TIMEOUT`]: chaos is opportunistic, and a missing reply is
/// counted, not retried.
const CHAOS_TIMEOUT: Duration = Duration::from_secs(3);
/// A scripted query answered with a shed marker is retried (the overload
/// is transient — a flood draining) up to this many times.
const MAX_SHED_RETRIES: u32 = 50;
/// Pause between shed retries, letting the carrier's backlog drain.
const SHED_BACKOFF: Duration = Duration::from_millis(2);
/// How long an evicted TCP probe waits for the server to close it.
const EVICT_WAIT: Duration = Duration::from_secs(4);

/// Driver knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverConfig {
    /// Total target queries/second across all carriers (None = flat out).
    pub qps: Option<u64>,
    /// Replay the transcript into a ground-truth core and compare.
    pub verify: bool,
    /// Wire-chaos profile interleaved with the scripted mix.
    pub chaos: ChaosProfile,
}

/// One wire exchange that reached the server's bridge: the exact bytes
/// sent, the transport, and the reply captured (None = timed out, or a
/// typed silent drop the driver predicted via [`classify`]).
#[derive(Debug, Clone)]
struct Exchange {
    wire: Vec<u8>,
    transport: Transport,
    reply: Option<Vec<u8>>,
}

/// Per-scripted-query summary (latency/outcome accounting; the exchanges
/// themselves live in the flat transcript).
#[derive(Debug, Clone)]
struct ScriptOutcome {
    /// Sends that got no reply before [`WIRE_TIMEOUT`].
    timeouts: u32,
    /// Final answer arrived (shed markers don't count).
    answered: bool,
    /// The UDP answer was truncated and retried over TCP.
    tc_retry: bool,
    /// First send → final answer, wall micros.
    latency_us: u64,
    /// Rcode label of the final answer, `"timeout"`, or `"shed"`.
    label: &'static str,
}

/// Everything one carrier thread recorded.
#[derive(Debug, Default)]
struct CarrierLog {
    exchanges: Vec<Exchange>,
    scripted: Vec<ScriptOutcome>,
    chaos_injected: BTreeMap<&'static str, u64>,
    shed_replies: u64,
    shed_retries: u64,
    evictions_observed: u64,
    chaos_unanswered: u64,
}

/// Aggregated results of a run.
#[derive(Debug)]
pub struct RunStats {
    /// Wire sends that reached the bridge (scripted sends, TC retries,
    /// and chaos datagrams/frames; evicted TCP probes are not counted —
    /// the front end ate them).
    pub sent: u64,
    /// Scripted queries that got a final answer.
    pub answered: u64,
    /// TC-bit answers retried over TCP.
    pub tc_retries: u64,
    /// UDP sends that timed out on the wire.
    pub wire_timeouts: u64,
    /// Ground-truth mismatches (0 unless `verify`; any nonzero is a bug).
    pub mismatches: u64,
    /// Chaos actions injected, total.
    pub chaos_injected: u64,
    /// Header-only REFUSED markers observed (front-end shedding).
    pub shed_replies: u64,
    /// Scripted queries resent because their first answer was a shed.
    pub shed_retries: u64,
    /// Hostile TCP probes the server evicted (connection closed without
    /// an answer — the defense working).
    pub evictions_observed: u64,
    /// Chaos sends owed a reply that never got one.
    pub chaos_unanswered: u64,
    /// Wire rcode taxonomy (`noerror`, `servfail`, ...) plus `timeout`.
    pub outcomes: BTreeMap<String, u64>,
    /// Wall-clock round-trip latencies, micros, in completion order.
    pub latencies_us: Vec<u64>,
    /// Wall seconds the wire phase took.
    pub wall_secs: f64,
    /// Host-side counters mirroring the fields above (profile export).
    pub registry: Registry,
}

impl RunStats {
    /// Achieved queries/second over the wire phase.
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.answered as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile latency in micros (sorts a copy).
    pub fn latency_percentile_us(&self, p: u64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as u64 - 1) * p / 100) as usize;
        sorted[idx]
    }
}

/// Drives `script` against the server at `eps`. With `cfg.verify`, builds
/// a ground-truth [`ServeCore`] from `eps.config` and replays the wire
/// transcript into it, counting byte mismatches.
pub fn run(eps: &Endpoints, script: &Script, cfg: &DriverConfig) -> std::io::Result<RunStats> {
    let clock = WallClock::new();
    let carriers = eps.carriers.len().max(1) as u64;
    let per_carrier_qps = cfg.qps.map(|q| (q / carriers).max(1));

    let start_us = clock.now_us();
    let mut logs: Vec<CarrierLog> = Vec::new();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for (shard, queries) in script.per_carrier.iter().enumerate() {
            let ep = &eps.carriers[shard];
            let clock_ref = &clock;
            let plan = plan_carrier(cfg.chaos, eps.config.seed, shard, queries);
            handles.push(
                scope.spawn(move || drive_carrier(ep, queries, &plan, per_carrier_qps, clock_ref)),
            );
        }
        for h in handles {
            match h.join() {
                Ok(Ok(t)) => logs.push(t),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(std::io::Error::other("carrier driver thread panicked")),
            }
        }
        Ok(())
    })?;
    let wall_secs = (clock.now_us() - start_us) as f64 / 1e6;

    // Aggregate the wire view.
    let mut stats = RunStats {
        sent: 0,
        answered: 0,
        tc_retries: 0,
        wire_timeouts: 0,
        mismatches: 0,
        chaos_injected: 0,
        shed_replies: 0,
        shed_retries: 0,
        evictions_observed: 0,
        chaos_unanswered: 0,
        outcomes: BTreeMap::new(),
        latencies_us: Vec::new(),
        wall_secs,
        registry: Registry::default(),
    };
    let mut chaos_kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for log in &logs {
        stats.sent += log.exchanges.len() as u64;
        stats.shed_replies += log.shed_replies;
        stats.shed_retries += log.shed_retries;
        stats.evictions_observed += log.evictions_observed;
        stats.chaos_unanswered += log.chaos_unanswered;
        for (&kind, &n) in &log.chaos_injected {
            stats.chaos_injected += n;
            *chaos_kinds.entry(kind).or_insert(0) += n;
        }
        for out in &log.scripted {
            stats.wire_timeouts += out.timeouts as u64;
            if out.tc_retry {
                stats.tc_retries += 1;
            }
            if out.answered {
                stats.answered += 1;
                stats.latencies_us.push(out.latency_us);
            }
            *stats.outcomes.entry(out.label.to_string()).or_insert(0) += 1;
        }
    }

    if cfg.verify {
        stats.mismatches = verify(eps, &logs);
    }

    let reg = &mut stats.registry;
    reg.inc_by("loadgen.sent", &[], stats.sent);
    reg.inc_by("loadgen.answered", &[], stats.answered);
    reg.inc_by("loadgen.tc_retries", &[], stats.tc_retries);
    reg.inc_by("loadgen.wire_timeouts", &[], stats.wire_timeouts);
    reg.inc_by("loadgen.mismatches", &[], stats.mismatches);
    for (kind, n) in chaos_kinds {
        reg.inc_by("loadgen.chaos_injected", &[("kind", kind)], n);
    }
    if stats.shed_retries > 0 {
        reg.inc_by("loadgen.shed_retries", &[], stats.shed_retries);
    }
    for &us in &stats.latencies_us {
        reg.observe_us("loadgen.latency_us", &[], us);
    }
    Ok(stats)
}

fn rcode_label(m: &Message) -> &'static str {
    use dnswire::message::Rcode;
    match m.header.rcode {
        Rcode::NoError => "noerror",
        Rcode::ServFail => "servfail",
        Rcode::NxDomain => "nxdomain",
        Rcode::Refused => "refused",
        _ => "other",
    }
}

/// One carrier's wire loop: strictly one exchange in flight, so the
/// server's per-shard injection order is exactly this thread's send
/// order — chaos included.
fn drive_carrier(
    ep: &serve::CarrierEndpoint,
    queries: &[crate::script::PlannedQuery],
    plan: &[Vec<ChaosAction>],
    qps: Option<u64>,
    clock: &WallClock,
) -> std::io::Result<CarrierLog> {
    let sock = UdpSocket::bind("127.0.0.1:0")?;
    sock.connect(ep.udp)?;
    sock.set_read_timeout(Some(WIRE_TIMEOUT))?;
    let mut buf = [0u8; 65_535];
    let mut log = CarrierLog::default();
    let epoch = clock.now_us();
    for (i, q) in queries.iter().enumerate() {
        for action in plan.get(i).map(Vec::as_slice).unwrap_or(&[]) {
            *log.chaos_injected.entry(action.kind()).or_insert(0) += 1;
            run_chaos(action, ep, &sock, &mut buf, &mut log)?;
        }
        if let Some(rate) = qps {
            clock.sleep_until(epoch + i as u64 * 1_000_000 / rate);
        }
        let sent_at = clock.now_us();
        let mut outcome = ScriptOutcome {
            timeouts: 0,
            answered: false,
            tc_retry: false,
            latency_us: 0,
            label: "timeout",
        };
        let mut retries = 0u32;
        let udp_reply = loop {
            let reply = udp_exchange(&sock, &mut buf, &q.wire, q.id, WIRE_TIMEOUT, &mut log)?;
            match &reply {
                None => {
                    outcome.timeouts += 1;
                    if outcome.timeouts >= MAX_SENDS {
                        break None;
                    }
                }
                Some(bytes) if is_shed_reply(bytes) => {
                    // Admission shed us: transient by construction (a
                    // flood draining) — back off briefly and retry.
                    log.shed_replies += 1;
                    if retries >= MAX_SHED_RETRIES {
                        outcome.label = "shed";
                        break None;
                    }
                    retries += 1;
                    log.shed_retries += 1;
                    std::thread::sleep(SHED_BACKOFF);
                }
                Some(_) => break reply,
            }
        };
        // TC bit set → retry the identical query over TCP, like a stub.
        let truncated = udp_reply
            .as_ref()
            .and_then(|b| Message::decode(b).ok())
            .is_some_and(|m| m.header.flags.truncated);
        let tcp_reply = if truncated {
            outcome.tc_retry = true;
            let r = tcp_retry(ep, &q.wire).ok();
            log.exchanges.push(Exchange {
                wire: q.wire.clone(),
                transport: Transport::Tcp,
                reply: r.clone(),
            });
            r
        } else {
            None
        };
        if let Some(bytes) = tcp_reply.as_ref().or(udp_reply.as_ref()) {
            outcome.answered = true;
            outcome.latency_us = clock.now_us() - sent_at;
            outcome.label = match Message::decode(bytes) {
                Ok(m) => rcode_label(&m),
                Err(_) => "undecodable",
            };
        }
        log.scripted.push(outcome);
    }
    Ok(log)
}

/// Sends `wire` once on `sock` and waits up to `timeout` for a reply
/// whose transaction id matches, discarding stale datagrams. Records the
/// exchange (reply included) in `log` and returns the reply.
fn udp_exchange(
    sock: &UdpSocket,
    buf: &mut [u8],
    wire: &[u8],
    id: u16,
    timeout: Duration,
    log: &mut CarrierLog,
) -> std::io::Result<Option<Vec<u8>>> {
    sock.set_read_timeout(Some(timeout))?;
    sock.send(wire)?;
    let mut reply = None;
    loop {
        match sock.recv(buf) {
            Ok(n) => {
                let id_matches =
                    dnswire::message::MessageView::new(&buf[..n]).is_ok_and(|v| v.id() == id);
                if id_matches {
                    reply = Some(buf[..n].to_vec());
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    log.exchanges.push(Exchange {
        wire: wire.to_vec(),
        transport: Transport::Udp,
        reply: reply.clone(),
    });
    Ok(reply)
}

/// Executes one chaos action, recording whatever reached the bridge.
fn run_chaos(
    action: &ChaosAction,
    ep: &serve::CarrierEndpoint,
    sock: &UdpSocket,
    buf: &mut [u8],
    log: &mut CarrierLog,
) -> std::io::Result<()> {
    match action {
        ChaosAction::UdpGarbage(bytes) | ChaosAction::UdpMutant(bytes) => {
            // The same pure classifier the server uses tells us whether
            // a reply is owed; Silent inputs are sent and forgotten.
            match classify(bytes) {
                WireClass::Silent(_) => {
                    sock.send(bytes)?;
                    log.exchanges.push(Exchange {
                        wire: bytes.clone(),
                        transport: Transport::Udp,
                        reply: None,
                    });
                }
                WireClass::Reject(_) | WireClass::WellFormed => {
                    let id = u16::from_be_bytes([bytes[0], bytes[1]]);
                    let got = udp_exchange(sock, buf, bytes, id, CHAOS_TIMEOUT, log)?;
                    if got.is_none() {
                        log.chaos_unanswered += 1;
                    } else if got.as_deref().is_some_and(is_shed_reply) {
                        log.shed_replies += 1;
                    }
                }
            }
        }
        ChaosAction::UdpFlood { wire, copies } => {
            let id = u16::from_be_bytes([wire[0], wire[1]]);
            for _ in 0..*copies {
                sock.send(wire)?;
            }
            // Every copy gets a reply — a sim answer if admitted, a
            // header-only REFUSED if shed. The bridge serves this shard
            // sequentially and loopback preserves datagram order, so
            // arrival order is processing order.
            sock.set_read_timeout(Some(CHAOS_TIMEOUT))?;
            let mut replies: Vec<Vec<u8>> = Vec::with_capacity(*copies);
            while replies.len() < *copies {
                match sock.recv(buf) {
                    Ok(n) => {
                        let id_matches = dnswire::message::MessageView::new(&buf[..n])
                            .is_ok_and(|v| v.id() == id);
                        if id_matches {
                            replies.push(buf[..n].to_vec());
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            log.chaos_unanswered += (*copies - replies.len()) as u64;
            log.shed_replies += replies.iter().filter(|r| is_shed_reply(r)).count() as u64;
            let mut it = replies.into_iter();
            for _ in 0..*copies {
                log.exchanges.push(Exchange {
                    wire: wire.clone(),
                    transport: Transport::Udp,
                    reply: it.next(),
                });
            }
        }
        ChaosAction::TcpOversized => {
            // Declare a frame over the server's cap; the server must
            // close the connection without reading the body.
            if expect_eviction(ep, &[0xFF, 0xFF, 0x00, 0x00, 0x00])? {
                log.evictions_observed += 1;
            }
        }
        ChaosAction::TcpStall => {
            // A partial frame followed by silence: the slow-read
            // deadline must evict us.
            if expect_eviction(ep, &[0x00, 0x40, 0xAB])? {
                log.evictions_observed += 1;
            }
        }
        ChaosAction::TcpSplit(wire) => {
            let reply = tcp_split_exchange(ep, wire).ok();
            if reply.is_none() {
                log.chaos_unanswered += 1;
            }
            log.exchanges.push(Exchange {
                wire: wire.clone(),
                transport: Transport::Tcp,
                reply,
            });
        }
    }
    Ok(())
}

/// Opens a TCP connection, sends `poison`, and waits for the server to
/// close it. Returns true when the close arrives in time (the eviction
/// defense fired). These bytes never reach the bridge, so no exchange is
/// recorded.
fn expect_eviction(ep: &serve::CarrierEndpoint, poison: &[u8]) -> std::io::Result<bool> {
    let mut stream = TcpStream::connect(ep.tcp)?;
    stream.set_read_timeout(Some(EVICT_WAIT))?;
    stream.write_all(poison)?;
    let mut chunk = [0u8; 256];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(true), // server closed us: evicted
            Ok(_) => {}               // unexpected bytes; keep draining
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(false);
            }
            // A reset is also a close from our point of view.
            Err(_) => return Ok(true),
        }
    }
}

/// Sends one framed query dribbled in small chunks (each within the
/// server's progress deadline) and reads the framed answer.
fn tcp_split_exchange(ep: &serve::CarrierEndpoint, wire: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(ep.tcp)?;
    stream.set_read_timeout(Some(CHAOS_TIMEOUT))?;
    let framed = frame(wire).map_err(std::io::Error::other)?;
    let step = (framed.len() / 3).max(1);
    for chunk in framed.chunks(step) {
        stream.write_all(chunk)?;
        std::thread::sleep(Duration::from_millis(50));
    }
    read_frame(&mut stream)
}

/// One length-prefixed query/answer exchange over a fresh TCP connection.
fn tcp_retry(ep: &serve::CarrierEndpoint, wire: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(ep.tcp)?;
    stream.set_read_timeout(Some(WIRE_TIMEOUT))?;
    let framed = frame(wire).map_err(std::io::Error::other)?;
    stream.write_all(&framed)?;
    read_frame(&mut stream)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut data = Vec::new();
    let mut chunk = [0u8; 2048];
    loop {
        match require_frame(&data) {
            Ok(payload) => return Ok(payload.to_vec()),
            Err(_) => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::other("server closed mid-frame"));
                }
                data.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

/// Replays the wire transcript into a fresh ground-truth core and counts
/// byte mismatches. One rule covers scripted and chaos traffic alike:
///
/// * a shed marker (header-only REFUSED) never reached the sim — skip;
/// * everything else is replayed via [`ServeCore::handle`] in transcript
///   order, and whenever a reply was captured on the wire it must equal
///   the truth core's answer byte-for-byte (replies the wire lost are
///   replayed for state but not compared, matching the server, which
///   still processed them).
fn verify(eps: &Endpoints, logs: &[CarrierLog]) -> u64 {
    let mut truth = ServeCore::new(eps.config.clone());
    let mut mismatches = 0u64;
    for (shard, log) in logs.iter().enumerate() {
        for ex in &log.exchanges {
            if ex.reply.as_deref().is_some_and(is_shed_reply) {
                continue;
            }
            let expected = truth.handle(shard, ex.transport, &ex.wire).into_reply();
            if let Some(got) = &ex.reply {
                if expected.as_ref() != Some(got) {
                    mismatches += 1;
                }
            }
        }
    }
    mismatches
}
