//! Deterministic wire chaos: adversarial input the driver interleaves
//! with the scripted mix, planned per carrier on its own seed lane
//! ([`measure::world::lane::WIRE_CHAOS`]) so enabling chaos never
//! perturbs the scripted query stream itself.
//!
//! Every action is planned up front from the world seed — two runs of the
//! same seed and profile inject byte-identical garbage at the same script
//! positions. The driver uses [`serve::classify`] on each planned
//! datagram to predict the server's reaction (reply vs typed silent
//! drop), which is what lets the ground-truth replay stay byte-exact
//! under fire: chaos that reaches the core is replayed; chaos the front
//! end eats (evicted TCP connections) never touches the core at all.

use crate::script::PlannedQuery;
use measure::world::{derive_seed, lane};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How hostile the wire is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosProfile {
    /// No chaos: the driver sends only the scripted mix.
    #[default]
    Off,
    /// Occasional malformed datagrams (~1 action per 16 scripted
    /// queries): exercises the reject paths without stressing admission.
    Mild,
    /// Sustained hostility (~1 action per 4 scripted queries) plus
    /// guaranteed early TCP abuse and a duplicate flood per carrier, so
    /// even a short soak drives the eviction and shed counters nonzero.
    Stress,
}

impl ChaosProfile {
    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<ChaosProfile> {
        match s {
            "off" | "none" => Some(ChaosProfile::Off),
            "mild" => Some(ChaosProfile::Mild),
            "stress" => Some(ChaosProfile::Stress),
            _ => None,
        }
    }

    /// Stable lowercase name (reports, metrics labels).
    pub fn label(self) -> &'static str {
        match self {
            ChaosProfile::Off => "off",
            ChaosProfile::Mild => "mild",
            ChaosProfile::Stress => "stress",
        }
    }

    /// Mean scripted queries per random chaos action (None = no chaos).
    fn action_period(self) -> Option<u64> {
        match self {
            ChaosProfile::Off => None,
            ChaosProfile::Mild => Some(16),
            ChaosProfile::Stress => Some(4),
        }
    }
}

/// One planned hostile act, executed by the driver immediately before a
/// scripted query.
#[derive(Debug, Clone)]
pub enum ChaosAction {
    /// Random bytes on the UDP socket. May accidentally parse as
    /// anything; the driver classifies to know whether a reply is owed.
    UdpGarbage(Vec<u8>),
    /// A mutated copy of the upcoming scripted query (bit flip,
    /// truncation, trailing garbage, or a corrupted QDCOUNT).
    UdpMutant(Vec<u8>),
    /// A burst of identical well-formed queries sent back-to-back: the
    /// only planned action that can legitimately earn REFUSED, by
    /// overrunning the carrier's inflight bound.
    UdpFlood {
        /// The duplicated query bytes.
        wire: Vec<u8>,
        /// How many copies go out back-to-back.
        copies: usize,
    },
    /// A TCP connection declaring a frame larger than the server's cap:
    /// must be evicted before the body is read.
    TcpOversized,
    /// A valid framed TCP query dribbled in small chunks (each within
    /// the server's progress deadline): must still be answered.
    TcpSplit(Vec<u8>),
    /// A TCP connection that sends a partial frame and then goes silent:
    /// must be evicted by the slow-read deadline.
    TcpStall,
}

impl ChaosAction {
    /// Stable label for the `loadgen.chaos_injected` counter.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosAction::UdpGarbage(_) => "garbage",
            ChaosAction::UdpMutant(_) => "mutant",
            ChaosAction::UdpFlood { .. } => "flood",
            ChaosAction::TcpOversized => "tcp-oversized",
            ChaosAction::TcpSplit(_) => "tcp-split",
            ChaosAction::TcpStall => "tcp-stall",
        }
    }
}

/// Copies of one query a flood sends: comfortably above the server's
/// per-carrier inflight bound, so a flood reliably drives the backlog
/// into shedding territory on loopback.
const FLOOD_COPIES: usize = 96;

/// Plans one carrier's chaos: `plan[i]` is the list of actions to run
/// immediately before scripted query `i`. Deterministic in
/// `(master_seed, shard, profile, script length)`.
pub fn plan_carrier(
    profile: ChaosProfile,
    master_seed: u64,
    shard: usize,
    queries: &[PlannedQuery],
) -> Vec<Vec<ChaosAction>> {
    let mut plan: Vec<Vec<ChaosAction>> = vec![Vec::new(); queries.len()];
    let Some(period) = profile.action_period() else {
        return plan;
    };
    if queries.is_empty() {
        return plan;
    }
    let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, lane::WIRE_CHAOS, shard as u64));

    // Guaranteed early events: even a short smoke run must light up the
    // formerr / eviction / shed counters it asserts on.
    plan[0].push(ChaosAction::UdpGarbage(garbage(&mut rng)));
    if profile == ChaosProfile::Stress {
        plan[0].push(ChaosAction::TcpOversized);
        if queries.len() > 1 {
            plan[1].push(ChaosAction::TcpStall);
        }
        if queries.len() > 2 {
            plan[2].push(ChaosAction::UdpFlood {
                wire: reidentified(&mut rng, &queries[2].wire),
                copies: FLOOD_COPIES,
            });
        }
    }

    for (i, q) in queries.iter().enumerate() {
        if rng.gen_range(0..period) != 0 {
            continue;
        }
        let action = match rng.gen_range(0..100u32) {
            0..=39 => ChaosAction::UdpGarbage(garbage(&mut rng)),
            40..=79 => ChaosAction::UdpMutant(mutate(&mut rng, &q.wire)),
            80..=89 => ChaosAction::TcpSplit(reidentified(&mut rng, &q.wire)),
            // Floods are expensive (FLOOD_COPIES sim resolutions each);
            // keep them rare, and only under stress.
            _ if profile == ChaosProfile::Stress && rng.gen_range(0..8u32) == 0 => {
                ChaosAction::UdpFlood {
                    wire: reidentified(&mut rng, &q.wire),
                    copies: FLOOD_COPIES,
                }
            }
            _ => ChaosAction::UdpGarbage(garbage(&mut rng)),
        };
        plan[i].push(action);
    }
    plan
}

/// Random bytes, 0..64 long. Anything goes: too-short runts, QR-bit
/// "responses", random opcodes — classification decides their fate.
fn garbage(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0..64usize);
    (0..len).map(|_| rng.gen()).collect()
}

/// A copy of `wire` with a fresh chaos-chosen transaction id, so flood
/// and split traffic never collides with the scripted exchange it rides
/// alongside.
fn reidentified(rng: &mut StdRng, wire: &[u8]) -> Vec<u8> {
    let mut out = wire.to_vec();
    if out.len() >= 2 {
        let id: u16 = rng.gen();
        out[..2].copy_from_slice(&id.to_be_bytes());
    }
    out
}

/// One random structural mutation of a scripted query. The result may
/// land in any wire class — well-formed (bit flip in the qname), FORMERR
/// (corrupted QDCOUNT), or a silent drop (truncated below the header) —
/// which is exactly the point.
fn mutate(rng: &mut StdRng, wire: &[u8]) -> Vec<u8> {
    let mut out = reidentified(rng, wire);
    if out.is_empty() {
        return out;
    }
    match rng.gen_range(0..4u32) {
        0 => {
            // Flip one bit somewhere past the id.
            let at = rng.gen_range(0..out.len());
            out[at] ^= 1 << rng.gen_range(0..8u32);
        }
        1 => {
            // Truncate anywhere, including below the header.
            let keep = rng.gen_range(0..out.len());
            out.truncate(keep);
        }
        2 => {
            // Trailing garbage after a valid message.
            let extra = rng.gen_range(1..16usize);
            for _ in 0..extra {
                out.push(rng.gen());
            }
        }
        _ => {
            // Corrupt QDCOUNT (bytes 4..6) to 0 or 2.
            if out.len() >= 6 {
                let qd: u16 = if rng.gen() { 0 } else { 2 };
                out[4..6].copy_from_slice(&qd.to_be_bytes());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::builder::QueryBuilder;
    use dnswire::name::DnsName;
    use dnswire::rdata::RecordType;

    fn fake_queries(n: usize) -> Vec<PlannedQuery> {
        (0..n)
            .map(|i| {
                let qname = DnsName::parse("m.yelp.com").unwrap();
                let wire = QueryBuilder::new(i as u16, "m.yelp.com", RecordType::A)
                    .build()
                    .unwrap()
                    .encode()
                    .unwrap();
                PlannedQuery {
                    id: i as u16,
                    qname,
                    wire,
                }
            })
            .collect()
    }

    #[test]
    fn plans_are_deterministic_per_seed_and_shard() {
        let qs = fake_queries(200);
        let a = plan_carrier(ChaosProfile::Stress, 2014, 1, &qs);
        let b = plan_carrier(ChaosProfile::Stress, 2014, 1, &qs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            for (ax, ay) in x.iter().zip(y) {
                assert_eq!(format!("{ax:?}"), format!("{ay:?}"));
            }
        }
        // A different shard draws a different stream.
        let c = plan_carrier(ChaosProfile::Stress, 2014, 2, &qs);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "shards must not share a chaos stream"
        );
    }

    #[test]
    fn off_plans_nothing_and_stress_forces_early_abuse() {
        let qs = fake_queries(50);
        let off = plan_carrier(ChaosProfile::Off, 7, 0, &qs);
        assert!(off.iter().all(|v| v.is_empty()));

        let stress = plan_carrier(ChaosProfile::Stress, 7, 0, &qs);
        let kinds: Vec<&str> = stress.iter().flatten().map(|a| a.kind()).collect();
        assert!(kinds.contains(&"tcp-oversized"));
        assert!(kinds.contains(&"tcp-stall"));
        assert!(kinds.contains(&"flood"));
        assert!(kinds.contains(&"garbage"));
    }

    #[test]
    fn mild_is_sparser_than_stress() {
        let qs = fake_queries(2_000);
        let mild: usize = plan_carrier(ChaosProfile::Mild, 99, 0, &qs)
            .iter()
            .map(Vec::len)
            .sum();
        let stress: usize = plan_carrier(ChaosProfile::Stress, 99, 0, &qs)
            .iter()
            .map(Vec::len)
            .sum();
        assert!(mild > 0);
        assert!(stress > mild * 2, "stress {stress} vs mild {mild}");
    }

    #[test]
    fn mutants_vary_and_keep_determinism() {
        let qs = fake_queries(1);
        let wire = &qs[0].wire;
        let mut rng = StdRng::seed_from_u64(5);
        let mutants: Vec<Vec<u8>> = (0..32).map(|_| mutate(&mut rng, wire)).collect();
        // At least one mutant differs from the original in shape.
        assert!(mutants.iter().any(|m| m.len() != wire.len()));
        let mut rng2 = StdRng::seed_from_u64(5);
        let again: Vec<Vec<u8>> = (0..32).map(|_| mutate(&mut rng2, wire)).collect();
        assert_eq!(mutants, again);
    }
}
