//! `loadgen` CLI — replay a seed-derived query mix against a running
//! `repro serve` instance.
//!
//! Usage:
//!   loadgen --endpoints FILE [--queries N] [--qps N] [--miss-per-mille N]
//!           [--verify] [--profile-out FILE] [--quiet]
//!
//! `--endpoints` is the file `repro serve` writes. `--verify` rebuilds the
//! server's world from the config echoed in that file and asserts every
//! wire answer byte-equal to the ground truth; any mismatch makes the
//! process exit nonzero.

#![forbid(unsafe_code)]

use loadgen::{build_script, render_profile_json, run, ChaosProfile, DriverConfig, MixConfig};
use serve::Endpoints;
use std::path::PathBuf;

struct Args {
    endpoints: PathBuf,
    queries: u64,
    qps: Option<u64>,
    miss_per_mille: u32,
    verify: bool,
    chaos: ChaosProfile,
    profile_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut endpoints = None;
    let mut queries = 10_000u64;
    let mut qps = None;
    let mut miss_per_mille = 50u32;
    let mut verify = false;
    let mut chaos = ChaosProfile::Off;
    let mut profile_out = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--endpoints" => {
                endpoints = Some(PathBuf::from(it.next().ok_or("--endpoints needs a path")?))
            }
            "--queries" => {
                queries = it
                    .next()
                    .ok_or("--queries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad query count: {e}"))?;
            }
            "--qps" => {
                qps = Some(
                    it.next()
                        .ok_or("--qps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad qps: {e}"))?,
                );
            }
            "--miss-per-mille" => {
                miss_per_mille = it
                    .next()
                    .ok_or("--miss-per-mille needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fraction: {e}"))?;
            }
            "--verify" => verify = true,
            "--chaos" => {
                let name = it.next().ok_or("--chaos needs a profile (mild|stress)")?;
                chaos = ChaosProfile::parse(&name)
                    .ok_or_else(|| format!("unknown chaos profile '{name}'"))?;
            }
            "--profile-out" => {
                profile_out = Some(PathBuf::from(
                    it.next().ok_or("--profile-out needs a path")?,
                ))
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                return Err("usage: loadgen --endpoints FILE [--queries N] [--qps N] [--miss-per-mille N] [--verify] [--chaos mild|stress] [--profile-out FILE] [--quiet]".into());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        endpoints: endpoints.ok_or("--endpoints is required")?,
        queries,
        qps,
        miss_per_mille,
        verify,
        chaos,
        profile_out,
        quiet,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&args.endpoints) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: cannot read {}: {e}", args.endpoints.display());
            std::process::exit(2);
        }
    };
    let eps = match Endpoints::parse(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("loadgen: bad endpoints file: {e}");
            std::process::exit(2);
        }
    };
    let mix = MixConfig {
        queries: args.queries,
        miss_per_mille: args.miss_per_mille,
    };
    let script = build_script(&eps, &mix);
    if !args.quiet {
        eprintln!(
            "loadgen: {} queries over {} carriers (seed {}, verify={}, chaos={})",
            script.total(),
            eps.carriers.len(),
            eps.config.seed,
            args.verify,
            args.chaos.label(),
        );
    }
    let cfg = DriverConfig {
        qps: args.qps,
        verify: args.verify,
        chaos: args.chaos,
    };
    let stats = match run(&eps, &script, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: wire run failed: {e}");
            std::process::exit(1);
        }
    };
    let profile = render_profile_json(&stats);
    if let Some(path) = &args.profile_out {
        if let Err(e) = std::fs::write(path, &profile) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
        }
    }
    if !args.quiet {
        eprint!("loadgen: host-plane profile\n{profile}");
    }
    println!(
        "loadgen: {} answered / {} sent, {:.0} qps, p50 {} us, p99 {} us, {} tc-retries, {} timeouts, {} mismatches, {} chaos ({} shed, {} evicted)",
        stats.answered,
        stats.sent,
        stats.qps(),
        stats.latency_percentile_us(50),
        stats.latency_percentile_us(99),
        stats.tc_retries,
        stats.wire_timeouts,
        stats.mismatches,
        stats.chaos_injected,
        stats.shed_replies,
        stats.evictions_observed,
    );
    if stats.mismatches > 0 || (args.verify && stats.answered == 0) {
        std::process::exit(1);
    }
}
