//! The CDN's authoritative mapping zone: answers domain queries with a
//! CNAME into the provider's namespace plus short-TTL A records for the
//! replicas selected for the querying resolver.

use crate::cdn::Cdn;
use dnssim::authority::DynamicZone;
use dnssim::zone::ZoneAnswer;
use dnswire::message::ResourceRecord;
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType};
use netsim::engine::ServiceCtx;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Dynamic zone serving one customer zone from one CDN.
pub struct MappingZone {
    /// Zone apex (e.g. `buzzfeed.com`).
    origin: DnsName,
    /// The provider's edge namespace (e.g. `edge.cdn-a.example`).
    edge_suffix: DnsName,
    /// The CDN doing the selection.
    cdn: Arc<Cdn>,
}

impl MappingZone {
    /// A mapping zone for `origin` served by `cdn` with edge names under
    /// `edge_suffix`.
    pub fn new(origin: DnsName, edge_suffix: DnsName, cdn: Arc<Cdn>) -> Self {
        MappingZone {
            origin,
            edge_suffix,
            cdn,
        }
    }

    /// The stable edge host name for a queried name (what the CNAME points
    /// at — `e<hash>.edge.cdn-a.example`).
    fn edge_name(&self, qname: &DnsName) -> DnsName {
        let mut h = DefaultHasher::new();
        qname.hash(&mut h);
        let label = format!("e{:08x}", h.finish() as u32);
        // detlint: allow(D9) -- the label is a fixed 9-byte lowercase-hex
        // literal, always a legal DNS label under any suffix short enough
        // to be a DnsName itself; child() cannot fail on it.
        self.edge_suffix.child(&label).expect("edge label is valid")
    }
}

impl DynamicZone for MappingZone {
    fn origin(&self) -> &DnsName {
        &self.origin
    }

    fn answer(
        &mut self,
        qname: &DnsName,
        qtype: RecordType,
        resolver: Ipv4Addr,
        ecs: Option<(Ipv4Addr, u8)>,
        _ctx: &mut ServiceCtx<'_>,
    ) -> ZoneAnswer {
        let mut out = ZoneAnswer::empty();
        if qtype != RecordType::A && qtype != RecordType::Cname {
            return out; // NODATA for types we do not serve
        }
        let edge = self.edge_name(qname);
        out.answers.push(ResourceRecord::new(
            qname.clone(),
            self.cdn.config.cname_ttl,
            RData::Cname(edge.clone()),
        ));
        if qtype == RecordType::A {
            // ECS (when announced) localizes the *client*, not the
            // resolver — the §9 fix for everything this paper measured.
            let locate_by = ecs.map(|(addr, _)| addr).unwrap_or(resolver);
            for addr in self.cdn.select(locate_by) {
                out.answers.push(ResourceRecord::new(
                    edge.clone(),
                    self.cdn.config.record_ttl,
                    RData::A(addr),
                ));
            }
            if ecs.is_some() {
                out.ecs_scope = Some(24);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdn::{CdnConfig, Replica};
    use dnswire::message::Rcode;
    use netsim::topo::Coord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn n(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn zone() -> MappingZone {
        let replicas: Vec<Replica> = (0..10)
            .map(|i| Replica {
                addr: ip(90, 0, i as u8, 1),
                coord: Coord {
                    x_km: i as f64 * 400.0,
                    y_km: 0.0,
                },
            })
            .collect();
        let cdn = Arc::new(Cdn::new(CdnConfig::new("cdn-a"), replicas));
        MappingZone::new(n("buzzfeed.com"), n("edge.cdn-a.example"), cdn)
    }

    fn answer(z: &mut MappingZone, qname: &str, qtype: RecordType, from: Ipv4Addr) -> ZoneAnswer {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: netsim::time::SimTime::ZERO,
            local_addr: ip(198, 51, 100, 1),
            rng: &mut rng,
            wake_after: None,
        };
        z.answer(&n(qname), qtype, from, None, &mut ctx)
    }

    #[test]
    fn serves_cname_plus_a_records() {
        let mut z = zone();
        let out = answer(
            &mut z,
            "www.buzzfeed.com",
            RecordType::A,
            ip(100, 110, 0, 1),
        );
        assert_eq!(out.rcode, Rcode::NoError);
        assert!(matches!(out.answers[0].rdata, RData::Cname(_)));
        let a_count = out
            .answers
            .iter()
            .filter(|rr| rr.record_type() == RecordType::A)
            .count();
        assert_eq!(a_count, 2); // top_k default
                                // CNAME long TTL, A records short TTL (Fig. 7's mechanism).
        assert_eq!(out.answers[0].ttl, 300);
        assert_eq!(out.answers[1].ttl, 30);
    }

    #[test]
    fn edge_name_is_stable_per_qname() {
        let mut z = zone();
        let a = answer(&mut z, "www.buzzfeed.com", RecordType::A, ip(1, 1, 1, 1));
        let b = answer(&mut z, "www.buzzfeed.com", RecordType::A, ip(2, 2, 2, 2));
        assert_eq!(a.answers[0].rdata, b.answers[0].rdata);
        let c = answer(&mut z, "img.buzzfeed.com", RecordType::A, ip(1, 1, 1, 1));
        assert_ne!(a.answers[0].rdata, c.answers[0].rdata);
    }

    #[test]
    fn selection_depends_on_resolver_prefix() {
        let mut z = zone();
        let a = answer(
            &mut z,
            "www.buzzfeed.com",
            RecordType::A,
            ip(100, 110, 0, 1),
        );
        let b = answer(
            &mut z,
            "www.buzzfeed.com",
            RecordType::A,
            ip(100, 110, 0, 2),
        );
        assert_eq!(a.answers, b.answers, "same /24 -> same mapping");
    }

    #[test]
    fn cname_query_returns_only_cname() {
        let mut z = zone();
        let out = answer(
            &mut z,
            "www.buzzfeed.com",
            RecordType::Cname,
            ip(1, 1, 1, 1),
        );
        assert_eq!(out.answers.len(), 1);
        assert!(matches!(out.answers[0].rdata, RData::Cname(_)));
    }

    #[test]
    fn other_types_get_nodata() {
        let mut z = zone();
        let out = answer(&mut z, "www.buzzfeed.com", RecordType::Txt, ip(1, 1, 1, 1));
        assert!(out.answers.is_empty());
        assert_eq!(out.rcode, Rcode::NoError);
    }
}
