//! The measured domain catalog (Table 2) and its assignment to CDN
//! providers.
//!
//! The paper measured nine popular mobile domains, "chosen given their
//! popularity and because their DNS resolution initially resulted in a
//! canonical name (CNAME) record, indicating the use of DNS based load
//! balancing". The OCR of the paper preserves `m.yelp.com` in Table 2 and
//! `buzzfeed.com` in Fig. 10; the remaining entries are reconstructed from
//! the popular-mobile-web population of 2014 (see EXPERIMENTS.md).

use dnswire::name::DnsName;

/// A domain under measurement and the CDN provider serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The domain the devices resolve (e.g. `m.yelp.com`).
    pub domain: DnsName,
    /// The registrable zone it lives in (what gets delegated).
    pub zone: DnsName,
    /// Index of the CDN provider serving it.
    pub provider: usize,
}

/// Number of distinct CDN providers in the catalog.
pub const PROVIDER_COUNT: usize = 4;

/// Provider display names (Akamai-like, EdgeCast-like, CloudFront-like, and
/// a small self-hosted footprint).
pub const PROVIDER_NAMES: [&str; PROVIDER_COUNT] = ["cdn-a", "cdn-b", "cdn-c", "cdn-d"];

/// The nine mobile domains of Table 2.
pub fn mobile_domains() -> Vec<CatalogEntry> {
    let raw: [(&str, &str, usize); 9] = [
        ("m.facebook.com", "facebook.com", 0),
        ("www.buzzfeed.com", "buzzfeed.com", 0),
        ("m.espn.go.com", "go.com", 0),
        ("m.yelp.com", "yelp.com", 1),
        ("m.twitter.com", "twitter.com", 1),
        ("www.google.com", "google.com", 2),
        ("m.youtube.com", "youtube.com", 2),
        ("m.amazon.com", "amazon.com", 2),
        ("en.m.wikipedia.org", "wikipedia.org", 3),
    ];
    raw.iter()
        .map(|(d, z, p)| CatalogEntry {
            domain: DnsName::parse(d).expect("valid catalog domain"),
            zone: DnsName::parse(z).expect("valid catalog zone"),
            provider: *p,
        })
        .collect()
}

/// The four domains Fig. 2 plots (one per provider, including the two
/// names recoverable from the paper text).
pub fn fig2_domains() -> Vec<DnsName> {
    [
        "www.buzzfeed.com",
        "m.yelp.com",
        "www.google.com",
        "en.m.wikipedia.org",
    ]
    .iter()
    .map(|d| DnsName::parse(d).expect("valid domain"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_domains_as_in_table_2() {
        let cat = mobile_domains();
        assert_eq!(cat.len(), 9);
    }

    #[test]
    fn paper_verifiable_entries_present() {
        let cat = mobile_domains();
        assert!(cat.iter().any(|e| e.domain.to_string() == "m.yelp.com"));
        assert!(cat
            .iter()
            .any(|e| e.domain.to_string() == "www.buzzfeed.com"));
    }

    #[test]
    fn providers_are_in_range_and_all_used() {
        let cat = mobile_domains();
        let mut used = [false; PROVIDER_COUNT];
        for e in &cat {
            assert!(e.provider < PROVIDER_COUNT);
            used[e.provider] = true;
        }
        assert!(used.iter().all(|&u| u), "every provider serves something");
    }

    #[test]
    fn domains_are_under_their_zones() {
        for e in mobile_domains() {
            assert!(e.domain.is_under(&e.zone), "{} !< {}", e.domain, e.zone);
        }
    }

    #[test]
    fn fig2_domains_are_in_the_catalog() {
        let cat = mobile_domains();
        for d in fig2_domains() {
            assert!(cat.iter().any(|e| e.domain == d), "{d}");
        }
    }
}
