//! The CDN model: replica POPs and the resolver-localized selection policy.
//!
//! Selection is keyed by the querying resolver's **/24 prefix** — the
//! granularity the paper inferred from the cosine-similarity bimodality of
//! Fig. 10 ("it appears that CDNs are grouping replica mappings by resolver
//! /24 prefix"). Prefixes the CDN can measure (public resolvers, wired
//! networks) are localized precisely; cellular resolver prefixes are
//! unmeasurable behind carrier firewalls (§4.4), so the CDN falls back to a
//! coarse believed-location with a stable per-prefix error — the faithful
//! abstraction of IP-geolocation failure on cellular blocks (Balakrishnan
//! et al., IMC'09).

use netsim::addr::Prefix;
use netsim::topo::Coord;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

/// One replica POP (a /24 with its servers; we model one server per POP).
#[derive(Debug, Clone, PartialEq)]
pub struct Replica {
    /// The replica server address.
    pub addr: Ipv4Addr,
    /// POP location.
    pub coord: Coord,
}

/// Tuning of a CDN provider.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnConfig {
    /// Provider name (`cdn-a`, …).
    pub name: String,
    /// A-record TTL in seconds ("the short TTLs used by CDNs", Fig. 7).
    pub record_ttl: u32,
    /// CNAME TTL in seconds.
    pub cname_ttl: u32,
    /// Replicas returned per answer.
    pub top_k: usize,
    /// Radius of the stable believed-location error applied to
    /// unmeasurable prefixes with no anchor, in km.
    pub coarse_error_km: f64,
    /// Radius of the error applied around a prefix anchor (the geo
    /// database is regionally right but city-wrong), in km.
    pub anchor_error_km: f64,
}

impl CdnConfig {
    /// Defaults matching the paper's observations (short TTLs, small
    /// replica sets per resolver).
    pub fn new(name: &str) -> Self {
        CdnConfig {
            name: name.to_string(),
            record_ttl: 30,
            cname_ttl: 300,
            top_k: 2,
            coarse_error_km: 900.0,
            anchor_error_km: 300.0,
        }
    }
}

/// A CDN provider: its POPs and what it knows about resolver locations.
#[derive(Debug)]
pub struct Cdn {
    /// Tuning.
    pub config: CdnConfig,
    /// All POPs.
    pub replicas: Vec<Replica>,
    /// Prefixes the CDN measured precisely (public DNS egress /24s, wired
    /// ISPs) mapped to their true location.
    measured: HashMap<Prefix, Coord>,
    /// Believed anchor per unmeasurable /24: where the geo database thinks
    /// the prefix lives (the true location of one of its members — usually
    /// regionally right, and *wrong for the other members*).
    prefix_anchors: HashMap<Prefix, Coord>,
    /// Believed centroid per unmeasurable address block (keyed by first
    /// octet: the carrier's public /8 in our address plan), e.g. the
    /// carrier's main peering city.
    coarse_centroids: HashMap<u8, Coord>,
    /// Fallback centroid when nothing is known at all.
    default_centroid: Coord,
}

impl Cdn {
    /// A CDN over the given POPs.
    pub fn new(config: CdnConfig, replicas: Vec<Replica>) -> Self {
        assert!(!replicas.is_empty(), "CDN without replicas");
        let n = replicas.len() as f64;
        let default_centroid = Coord {
            x_km: replicas.iter().map(|r| r.coord.x_km).sum::<f64>() / n,
            y_km: replicas.iter().map(|r| r.coord.y_km).sum::<f64>() / n,
        };
        Cdn {
            config,
            replicas,
            measured: HashMap::new(),
            prefix_anchors: HashMap::new(),
            coarse_centroids: HashMap::new(),
            default_centroid,
        }
    }

    /// Registers a precisely measured resolver prefix (the CDN can probe
    /// it, so it knows where it is).
    pub fn add_measured(&mut self, prefix: Prefix, coord: Coord) {
        self.measured.insert(prefix, coord);
    }

    /// Registers the believed location of an unmeasurable block (first
    /// octet of the carrier's public space → its main peering city).
    pub fn add_coarse_centroid(&mut self, first_octet: u8, coord: Coord) {
        self.coarse_centroids.insert(first_octet, coord);
    }

    /// Registers the geo-database anchor of an unmeasurable /24.
    pub fn add_prefix_anchor(&mut self, prefix: Prefix, coord: Coord) {
        self.prefix_anchors.insert(prefix, coord);
    }

    /// The stable pseudo-random believed-location error for a prefix, as
    /// offsets in `[-radius, radius]`.
    fn prefix_error(&self, prefix: Prefix, radius_km: f64) -> (f64, f64) {
        let mut h = DefaultHasher::new();
        prefix.hash(&mut h);
        self.config.name.hash(&mut h);
        let v = h.finish();
        // Two independent-ish uniform offsets in [-1, 1].
        let a = ((v & 0xFFFF) as f64 / 65535.0) * 2.0 - 1.0;
        let b = (((v >> 16) & 0xFFFF) as f64 / 65535.0) * 2.0 - 1.0;
        (a * radius_km, b * radius_km)
    }

    /// Where the CDN believes the resolver prefix is located.
    pub fn believed_location(&self, resolver: Ipv4Addr) -> Coord {
        let prefix = Prefix::slash24_of(resolver);
        if let Some(&coord) = self.measured.get(&prefix) {
            return coord;
        }
        if let Some(&anchor) = self.prefix_anchors.get(&prefix) {
            let (dx, dy) = self.prefix_error(prefix, self.config.anchor_error_km);
            return Coord {
                x_km: anchor.x_km + dx,
                y_km: anchor.y_km + dy,
            };
        }
        let centroid = self
            .coarse_centroids
            .get(&resolver.octets()[0])
            .copied()
            .unwrap_or(self.default_centroid);
        let (dx, dy) = self.prefix_error(prefix, self.config.coarse_error_km);
        Coord {
            x_km: centroid.x_km + dx,
            y_km: centroid.y_km + dy,
        }
    }

    /// Whether the CDN has precise knowledge of this resolver's prefix.
    pub fn is_measured(&self, resolver: Ipv4Addr) -> bool {
        self.measured.contains_key(&Prefix::slash24_of(resolver))
    }

    /// Selects the replica set for a resolver: the `top_k` POPs nearest to
    /// the believed location. Deterministic per /24, which is exactly what
    /// makes Fig. 10 bimodal.
    pub fn select(&self, resolver: Ipv4Addr) -> Vec<Ipv4Addr> {
        let loc = self.believed_location(resolver);
        let mut by_dist: Vec<(f64, Ipv4Addr)> = self
            .replicas
            .iter()
            .map(|r| (r.coord.distance_km(&loc), r.addr))
            .collect();
        by_dist.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        by_dist
            .into_iter()
            .take(self.config.top_k.max(1))
            .map(|(_, a)| a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn grid_cdn() -> Cdn {
        let replicas: Vec<Replica> = (0..25)
            .map(|i| Replica {
                addr: ip(90, 0, i as u8, 1),
                coord: Coord {
                    x_km: (i % 5) as f64 * 1000.0,
                    y_km: (i / 5) as f64 * 600.0,
                },
            })
            .collect();
        Cdn::new(CdnConfig::new("cdn-a"), replicas)
    }

    #[test]
    fn measured_prefixes_get_nearest_replicas() {
        let mut cdn = grid_cdn();
        let here = Coord {
            x_km: 2000.0,
            y_km: 1200.0,
        };
        cdn.add_measured(Prefix::slash24_of(ip(173, 194, 7, 9)), here);
        let picked = cdn.select(ip(173, 194, 7, 9));
        assert_eq!(picked.len(), 2);
        // Nearest POP to (2000, 1200) is index 12 (x=2000, y=1200).
        assert_eq!(picked[0], ip(90, 0, 12, 1));
    }

    #[test]
    fn same_slash24_same_set_different_slash24_usually_differs() {
        let mut cdn = grid_cdn();
        cdn.add_coarse_centroid(
            100,
            Coord {
                x_km: 2000.0,
                y_km: 1200.0,
            },
        );
        let a1 = cdn.select(ip(100, 110, 0, 1));
        let a2 = cdn.select(ip(100, 110, 0, 200));
        assert_eq!(a1, a2, "same /24 -> identical replica set");
        let mut diff = 0;
        for k in 0..20u8 {
            let other = cdn.select(ip(100, 111, k, 1));
            if other != a1 {
                diff += 1;
            }
        }
        // The per-/24 believed-location error makes other prefixes land on
        // different POPs most of the time.
        assert!(diff >= 10, "only {diff}/20 differed");
    }

    #[test]
    fn coarse_error_is_stable_across_calls() {
        let mut cdn = grid_cdn();
        cdn.add_coarse_centroid(100, Coord::default());
        let a = cdn.believed_location(ip(100, 110, 0, 1));
        let b = cdn.believed_location(ip(100, 110, 0, 99));
        assert_eq!(a.x_km, b.x_km);
        assert_eq!(a.y_km, b.y_km);
    }

    #[test]
    fn unknown_blocks_fall_back_to_default_centroid_area() {
        let cdn = grid_cdn();
        let loc = cdn.believed_location(ip(55, 1, 2, 3));
        // centroid (2000, 1200) ± coarse error (900)
        assert!((loc.x_km - 2000.0).abs() <= 900.0 + 1e-9);
        assert!((loc.y_km - 1200.0).abs() <= 900.0 + 1e-9);
    }

    #[test]
    fn believed_error_differs_between_cdns() {
        let a = grid_cdn();
        let mut cfg = CdnConfig::new("cdn-b");
        cfg.coarse_error_km = 900.0;
        let b = Cdn::new(cfg, a.replicas.clone());
        let la = a.believed_location(ip(100, 110, 0, 1));
        let lb = b.believed_location(ip(100, 110, 0, 1));
        assert!(la != lb, "different providers believe different things");
    }

    #[test]
    fn top_k_is_respected() {
        let mut cdn = grid_cdn();
        cdn.config.top_k = 5;
        assert_eq!(cdn.select(ip(1, 2, 3, 4)).len(), 5);
    }

    #[test]
    fn is_measured_tracks_registration() {
        let mut cdn = grid_cdn();
        assert!(!cdn.is_measured(ip(173, 194, 7, 9)));
        cdn.add_measured(Prefix::slash24_of(ip(173, 194, 7, 9)), Coord::default());
        assert!(cdn.is_measured(ip(173, 194, 7, 50)));
    }
}
