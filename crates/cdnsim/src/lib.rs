#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `cdnsim` — the content-delivery substrate of the *Behind the Curtain*
//! reproduction: replica POPs, the resolver-/24-keyed mapping policy the
//! paper deduced from its cosine-similarity analysis, and the authoritative
//! mapping zones that answer device queries with CNAME + short-TTL A
//! records.
//!
//! The key modeled mechanism: CDNs localize clients by their **resolver's
//! /24 prefix**. Prefixes the CDN can probe are mapped well; cellular
//! resolver prefixes are unreachable (§4.4), so the CDN's believed location
//! carries a stable per-prefix error — and every churn of a device's
//! external resolver across /24s (§4.5) re-rolls its replica set, producing
//! the latency inflation of Fig. 2.

pub mod catalog;
pub mod cdn;
pub mod edge;
pub mod mapping;

pub use catalog::{fig2_domains, mobile_domains, CatalogEntry, PROVIDER_COUNT, PROVIDER_NAMES};
pub use cdn::{Cdn, CdnConfig, Replica};
pub use edge::EdgeZone;
pub use mapping::MappingZone;
