//! The provider's own edge zone: serves A queries for the CNAME targets
//! (`e<hash>.edge.cdn-a.example`) when a resolver re-resolves an edge name
//! after the A records expired but the CNAME is still cached.

use crate::cdn::Cdn;
use dnssim::authority::DynamicZone;
use dnssim::zone::ZoneAnswer;
use dnswire::message::ResourceRecord;
use dnswire::name::DnsName;
use dnswire::rdata::{RData, RecordType};
use netsim::engine::ServiceCtx;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Dynamic zone for a provider's edge namespace.
pub struct EdgeZone {
    origin: DnsName,
    cdn: Arc<Cdn>,
}

impl EdgeZone {
    /// An edge zone rooted at `origin` (e.g. `edge.cdn-a.example`).
    pub fn new(origin: DnsName, cdn: Arc<Cdn>) -> Self {
        EdgeZone { origin, cdn }
    }
}

impl DynamicZone for EdgeZone {
    fn origin(&self) -> &DnsName {
        &self.origin
    }

    fn answer(
        &mut self,
        qname: &DnsName,
        qtype: RecordType,
        resolver: Ipv4Addr,
        ecs: Option<(Ipv4Addr, u8)>,
        _ctx: &mut ServiceCtx<'_>,
    ) -> ZoneAnswer {
        let mut out = ZoneAnswer::empty();
        if qtype == RecordType::A {
            let locate_by = ecs.map(|(addr, _)| addr).unwrap_or(resolver);
            for addr in self.cdn.select(locate_by) {
                out.answers.push(ResourceRecord::new(
                    qname.clone(),
                    self.cdn.config.record_ttl,
                    RData::A(addr),
                ));
            }
            if ecs.is_some() {
                out.ecs_scope = Some(24);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdn::{CdnConfig, Replica};
    use netsim::topo::Coord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_zone_answers_any_child_with_selection() {
        let cdn = Arc::new(Cdn::new(
            CdnConfig::new("cdn-a"),
            vec![
                Replica {
                    addr: Ipv4Addr::new(90, 0, 0, 1),
                    coord: Coord::default(),
                },
                Replica {
                    addr: Ipv4Addr::new(90, 0, 1, 1),
                    coord: Coord {
                        x_km: 100.0,
                        y_km: 0.0,
                    },
                },
            ],
        ));
        let mut z = EdgeZone::new(DnsName::parse("edge.cdn-a.example").unwrap(), cdn);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ServiceCtx {
            now: netsim::time::SimTime::ZERO,
            local_addr: Ipv4Addr::new(9, 9, 9, 9),
            rng: &mut rng,
            wake_after: None,
        };
        let out = z.answer(
            &DnsName::parse("e12345678.edge.cdn-a.example").unwrap(),
            RecordType::A,
            Ipv4Addr::new(8, 8, 8, 8),
            None,
            &mut ctx,
        );
        assert_eq!(out.answers.len(), 2);
        let txt = z.answer(
            &DnsName::parse("e12345678.edge.cdn-a.example").unwrap(),
            RecordType::Txt,
            Ipv4Addr::new(8, 8, 8, 8),
            None,
            &mut ctx,
        );
        assert!(txt.answers.is_empty());
    }
}
