//! Property-based tests for the CDN model: selection determinism, /24
//! stability, believed-location bounds.

use cdnsim::cdn::{Cdn, CdnConfig, Replica};
use netsim::addr::Prefix;
use netsim::topo::Coord;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn grid_cdn(top_k: usize) -> Cdn {
    let replicas: Vec<Replica> = (0..30)
        .map(|i| Replica {
            addr: Ipv4Addr::new(90, 0, i as u8, 1),
            coord: Coord {
                x_km: (i % 6) as f64 * 700.0,
                y_km: (i / 6) as f64 * 500.0,
            },
        })
        .collect();
    let mut cfg = CdnConfig::new("prop");
    cfg.top_k = top_k;
    Cdn::new(cfg, replicas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn selection_is_deterministic_and_sized(octets in any::<[u8; 4]>(), k in 1usize..6) {
        let cdn = grid_cdn(k);
        let addr = Ipv4Addr::from(octets);
        let a = cdn.select(addr);
        let b = cdn.select(addr);
        prop_assert_eq!(&a, &b, "selection not deterministic");
        prop_assert_eq!(a.len(), k.min(30));
        // No duplicate replicas in one answer.
        let set: std::collections::HashSet<_> = a.iter().collect();
        prop_assert_eq!(set.len(), a.len());
    }

    #[test]
    fn same_slash24_always_gets_the_same_set(net in any::<[u8; 3]>(), h1 in any::<u8>(), h2 in any::<u8>()) {
        let cdn = grid_cdn(2);
        let a = Ipv4Addr::new(net[0], net[1], net[2], h1);
        let b = Ipv4Addr::new(net[0], net[1], net[2], h2);
        prop_assert_eq!(cdn.select(a), cdn.select(b));
    }

    #[test]
    fn believed_location_error_is_bounded(octets in any::<[u8; 4]>()) {
        let mut cdn = grid_cdn(2);
        let centroid = Coord { x_km: 2000.0, y_km: 1000.0 };
        cdn.add_coarse_centroid(octets[0], centroid);
        let addr = Ipv4Addr::from(octets);
        let loc = cdn.believed_location(addr);
        let err = cdn.config.coarse_error_km;
        prop_assert!((loc.x_km - centroid.x_km).abs() <= err + 1e-9);
        prop_assert!((loc.y_km - centroid.y_km).abs() <= err + 1e-9);
    }

    #[test]
    fn anchors_tighten_the_error(octets in any::<[u8; 4]>()) {
        let mut cdn = grid_cdn(2);
        let anchor = Coord { x_km: 700.0, y_km: 500.0 };
        let addr = Ipv4Addr::from(octets);
        cdn.add_prefix_anchor(Prefix::slash24_of(addr), anchor);
        let loc = cdn.believed_location(addr);
        let err = cdn.config.anchor_error_km;
        prop_assert!((loc.x_km - anchor.x_km).abs() <= err + 1e-9);
        prop_assert!((loc.y_km - anchor.y_km).abs() <= err + 1e-9);
    }

    #[test]
    fn measured_prefixes_are_exact(octets in any::<[u8; 4]>(), x in 0.0f64..4000.0, y in 0.0f64..2000.0) {
        let mut cdn = grid_cdn(1);
        let addr = Ipv4Addr::from(octets);
        let here = Coord { x_km: x, y_km: y };
        cdn.add_measured(Prefix::slash24_of(addr), here);
        let loc = cdn.believed_location(addr);
        prop_assert_eq!(loc.x_km, x);
        prop_assert_eq!(loc.y_km, y);
        // The selected replica is the true nearest one.
        let nearest = cdn
            .replicas
            .iter()
            .min_by(|a, b| {
                a.coord
                    .distance_km(&here)
                    .partial_cmp(&b.coord.distance_km(&here))
                    .unwrap()
            })
            .unwrap()
            .addr;
        prop_assert_eq!(cdn.select(addr)[0], nearest);
    }
}
