//! `repro serve` / `repro soak` — the live serving plane.
//!
//! `serve` binds one UDP socket and one TCP listener per carrier on
//! loopback, writes the endpoints handshake file, and answers real RFC
//! 1035 queries out of the simulated world until `--max-queries` answers
//! (or forever). `soak` runs the whole loop in-process: server up, the
//! deterministic load generator drives the scripted mix over real
//! sockets, every wire answer is replayed into a ground-truth core and
//! compared byte-for-byte, and the host-plane profile is exported.

use cdns::measure::WorldConfig;
use cdns::obs::host::{Profiler, Stage};
use loadgen::{build_script, render_profile_json, ChaosProfile, DriverConfig, MixConfig};
use serve::DnsServer;
use std::fs;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::Duration;

/// Knobs shared by `repro serve` and `repro soak`.
pub struct ServeArgs {
    /// Where to write the endpoints handshake file (serve mode).
    pub endpoints_out: PathBuf,
    /// Stop after this many answered queries (serve mode; None = forever).
    pub max_queries: Option<u64>,
    /// Total scripted queries (soak mode).
    pub queries: u64,
    /// Target queries/second across carriers (None = flat out).
    pub qps: Option<u64>,
    /// Cache-busting fraction in thousandths.
    pub miss_per_mille: u32,
    /// Where to write the soak profile JSON (None = skip).
    pub profile_out: Option<PathBuf>,
    /// Where to write the server's counter registry as JSON (None = skip).
    pub metrics_out: Option<PathBuf>,
    /// Replay the wire transcript into a ground-truth core (soak mode).
    pub verify: bool,
    /// Wire-chaos profile the load generator interleaves (soak mode).
    pub chaos: ChaosProfile,
    /// Silence stderr reporting.
    pub quiet: bool,
}

/// `repro serve`: bind, publish endpoints, answer until done. Returns a
/// process exit code.
pub fn run_serve(config: WorldConfig, args: &ServeArgs) -> i32 {
    let mut prof = Profiler::new(!args.quiet);
    let bind_stage = Stage::begin("serve bind");
    let server = match DnsServer::start(config, Ipv4Addr::LOCALHOST) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro serve: cannot bind: {e}");
            return 1;
        }
    };
    prof.record(bind_stage.end());

    if let Some(dir) = args.endpoints_out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = fs::create_dir_all(dir);
        }
    }
    let eps = server.endpoints();
    if let Err(e) = fs::write(&args.endpoints_out, eps.render()) {
        eprintln!(
            "repro serve: cannot write {}: {e}",
            args.endpoints_out.display()
        );
        return 1;
    }
    if !args.quiet {
        for c in &eps.carriers {
            eprintln!(
                "repro serve: carrier {} '{}' udp {} tcp {} ({} devices)",
                c.index, c.name, c.udp, c.tcp, c.devices
            );
        }
        eprintln!(
            "repro serve: endpoints written to {}; serving{}",
            args.endpoints_out.display(),
            match args.max_queries {
                Some(n) => format!(" until {n} answers"),
                None => " until killed".to_string(),
            }
        );
    }

    let serve_stage = Stage::begin("serve loop");
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if let Some(max) = args.max_queries {
            if server.answered() >= max {
                break;
            }
        }
    }
    let answered = server.answered();
    prof.record_with_rates(serve_stage.end(), &[(answered, "answers")]);

    let report = server.stop();
    println!(
        "serve: answered {} queries ({} rejected, {} dropped, {} shed, {} evicted, {} drained, {} engine events)",
        report.answered,
        report.rejected,
        report.errors,
        report.shed,
        report.evicted,
        report.drained,
        report.events
    );
    print!("{}", report.registry.render_table("serve vitals"));
    if !args.quiet {
        let text = prof.report();
        if !text.is_empty() {
            eprint!("repro serve: host-plane profile\n{text}");
        }
    }
    0
}

/// `repro soak`: in-process server + load generator + ground-truth
/// verification. Returns a process exit code (nonzero on any mismatch or
/// a dead wire).
pub fn run_soak(config: WorldConfig, args: &ServeArgs) -> i32 {
    let mut prof = Profiler::new(!args.quiet);
    let bind_stage = Stage::begin("soak bind");
    let server = match DnsServer::start(config, Ipv4Addr::LOCALHOST) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro soak: cannot bind: {e}");
            return 1;
        }
    };
    let eps = server.endpoints().clone();
    prof.record(bind_stage.end());
    if !args.quiet {
        eprintln!(
            "repro soak: {} carriers up; scripting {} queries (miss {}/1000, qps {}, chaos {})",
            eps.carriers.len(),
            args.queries,
            args.miss_per_mille,
            args.qps
                .map_or_else(|| "unpaced".to_string(), |q| q.to_string()),
            args.chaos.label(),
        );
    }

    let script_stage = Stage::begin("soak script");
    let script = build_script(
        &eps,
        &MixConfig {
            queries: args.queries,
            miss_per_mille: args.miss_per_mille,
        },
    );
    prof.record(script_stage.end());

    let wire_stage = Stage::begin("soak wire");
    let cfg = DriverConfig {
        qps: args.qps,
        verify: args.verify,
        chaos: args.chaos,
    };
    let stats = match loadgen::run(&eps, &script, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro soak: wire driver failed: {e}");
            drop(server.stop());
            return 1;
        }
    };
    prof.record_with_rates(wire_stage.end(), &[(stats.answered, "answers")]);

    let report = server.stop();
    let profile = render_profile_json(&stats);
    if let Some(path) = &args.profile_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        if let Err(e) = fs::write(path, &profile) {
            eprintln!("repro soak: cannot write {}: {e}", path.display());
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        if let Err(e) = fs::write(path, report.registry.to_json()) {
            eprintln!("repro soak: cannot write {}: {e}", path.display());
        }
    }

    println!(
        "soak: {} scripted, {} answered, {} tc-retries, {} wire-timeouts, {} mismatches",
        script.total(),
        stats.answered,
        stats.tc_retries,
        stats.wire_timeouts,
        stats.mismatches
    );
    if args.chaos != ChaosProfile::Off {
        println!(
            "soak: chaos {}: {} injected, {} shed replies ({} retries), {} hostile conns evicted, {} chaos sends unanswered",
            args.chaos.label(),
            stats.chaos_injected,
            stats.shed_replies,
            stats.shed_retries,
            stats.evictions_observed,
            stats.chaos_unanswered
        );
        println!(
            "soak: server saw {} rejected, {} typed drops, {} shed, {} evicted, {} drained",
            report.rejected, report.errors, report.shed, report.evicted, report.drained
        );
    }
    println!(
        "soak: {:.0} q/s wall, p50 {} us, p99 {} us; server answered {} ({} engine events)",
        stats.qps(),
        stats.latency_percentile_us(50),
        stats.latency_percentile_us(99),
        report.answered,
        report.events
    );
    if args.verify {
        println!(
            "soak: ground truth {}",
            if stats.mismatches == 0 {
                "clean — every wire answer byte-equal to the batch resolver"
            } else {
                "BROKEN — wire answers diverged from the batch resolver"
            }
        );
    }
    if !args.quiet {
        eprintln!("repro soak: host-plane profile (loadgen)\n{profile}");
        eprint!("{}", report.registry.render_table("serve vitals"));
        let text = prof.report();
        if !text.is_empty() {
            eprint!("repro soak: host-plane profile\n{text}");
        }
    }

    if report.panicked {
        eprintln!("repro soak: server bridge panicked");
        return 1;
    }
    // Zero lost well-formed answers: every scripted query must complete.
    if stats.answered != script.total() {
        eprintln!(
            "repro soak: {} scripted queries lost ({} answered of {})",
            script.total() - stats.answered,
            stats.answered,
            script.total()
        );
        return 1;
    }
    if stats.mismatches > 0 || stats.answered == 0 {
        return 1;
    }
    0
}
