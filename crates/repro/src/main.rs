//! `repro` — regenerates every table and figure of *Behind the Curtain*
//! (IMC 2014) from a seeded simulated campaign.
//!
//! Usage:
//!   repro [all|table1|table2|fig2|fig3|table3|fig4|fig5|fig6|fig7|table4|
//!          fig8|fig9|fig10|egress|table5|fig11|fig12|fig13|fig14|failures]
//!         [--scale quick|standard|full] [--seed N] [--out DIR]
//!         [--threads N] [--ecs] [--era lte|3g]
//!         [--fault-profile none|cellular|stress] [--queue heap|wheel]
//!         [--metrics] [--no-metrics] [--progress] [--quiet]
//!   repro serve [--scale ...] [--seed N] [--endpoints PATH]
//!         [--max-queries N] [--quiet]
//!   repro soak  [--scale ...] [--seed N] [--queries N] [--qps N]
//!         [--miss-per-mille N] [--no-verify] [--profile-out PATH] [--quiet]
//!
//! `serve` binds a real UDP/TCP DNS front end (loopback, kernel ports)
//! over the simulated world and answers until `--max-queries` (or
//! forever); the endpoints handshake file lets an external `loadgen`
//! rebuild the exact same world for ground-truth verification. `soak`
//! runs server + load generator + byte-for-byte verification in-process.
//!
//! `--threads N` caps the campaign driver at `N` OS threads (default: one
//! per carrier shard, capped by the machine). Output is byte-identical for
//! every thread count — with or without a fault profile.
//!
//! `--queue` selects the engine's event-queue implementation (default:
//! the timing wheel). Outputs are byte-identical either way; the knob
//! exists for A/B benchmarking and for bisecting queue regressions.
//!
//! `--fault-profile cellular` turns on the deterministic chaos layer (link
//! loss/outages/latency spikes plus resolver-side SERVFAILs, truncation,
//! and blackouts) and switches experiments to the hardened client; the
//! `failures` artifact then reports the outcome taxonomy per carrier.
//!
//! Observability: the sim-plane metric registry is exported to
//! `<out>/metrics.json` on every run (suppress with `--no-metrics`);
//! `--metrics` additionally prints the summary table to stdout.
//! `--progress` emits one stderr line per shard-day. All wall-clock
//! readings (stage timings, events/sec) come from the host-plane profiler
//! and are reported on stderr only, after the run; `--quiet` silences
//! stderr reporting entirely.
//!
//! Text goes to stdout; CSV series and the raw dataset tables go to the
//! output directory (default `results/`).

#![forbid(unsafe_code)]

use cdns::measure::{
    CampaignConfig, ExperimentSpec, FaultProfile, Parallelism, ProgressEvent, QueueKind,
    WorldConfig,
};
use cdns::obs::host::{Profiler, Stage};
use cdns::{figures, Study, StudyConfig};
use std::fs;
use std::path::PathBuf;

mod serving;

struct Args {
    targets: Vec<String>,
    scale: String,
    seed: u64,
    out: PathBuf,
    ecs: bool,
    three_g: bool,
    threads: Option<usize>,
    queue: QueueKind,
    fault_profile: FaultProfile,
    metrics_table: bool,
    write_metrics: bool,
    progress: bool,
    quiet: bool,
    serve: serving::ServeArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut targets = Vec::new();
    let mut scale = "standard".to_string();
    let mut seed = 2014u64;
    let mut out = PathBuf::from("results");
    let mut ecs = false;
    let mut three_g = false;
    let mut threads = None;
    let mut queue = QueueKind::default();
    let mut fault_profile = FaultProfile::None;
    let mut metrics_table = false;
    let mut write_metrics = true;
    let mut progress = false;
    let mut quiet = false;
    let mut endpoints_out = None;
    let mut max_queries = None;
    let mut soak_queries = 10_000u64;
    let mut qps = None;
    let mut miss_per_mille = 50u32;
    let mut profile_out = None;
    let mut metrics_out = None;
    let mut verify = true;
    let mut chaos = loadgen::ChaosProfile::Off;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ecs" => ecs = true,
            "--metrics" => metrics_table = true,
            "--no-metrics" => write_metrics = false,
            "--progress" => progress = true,
            "--quiet" => quiet = true,
            "--queue" => {
                let name = it.next().ok_or("--queue needs heap|wheel")?;
                queue = QueueKind::parse(&name)
                    .ok_or(format!("unknown event queue '{name}' (heap|wheel)"))?;
            }
            "--fault-profile" => {
                let name = it
                    .next()
                    .ok_or("--fault-profile needs none|cellular|stress")?;
                fault_profile = FaultProfile::parse(&name).ok_or(format!(
                    "unknown fault profile '{name}' (none|cellular|stress)"
                ))?;
            }
            "--era" => {
                let era = it.next().ok_or("--era needs lte|3g")?;
                three_g = match era.as_str() {
                    "3g" => true,
                    "lte" => false,
                    other => return Err(format!("unknown era '{other}' (lte|3g)")),
                };
            }
            "--scale" => {
                scale = it.next().ok_or("--scale needs a value")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?,
                );
            }
            "--endpoints" => {
                endpoints_out = Some(PathBuf::from(it.next().ok_or("--endpoints needs a path")?));
            }
            "--max-queries" => {
                max_queries = Some(
                    it.next()
                        .ok_or("--max-queries needs a value")?
                        .parse()
                        .map_err(|e| format!("bad query count: {e}"))?,
                );
            }
            "--queries" => {
                soak_queries = it
                    .next()
                    .ok_or("--queries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad query count: {e}"))?;
            }
            "--qps" => {
                qps = Some(
                    it.next()
                        .ok_or("--qps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad qps: {e}"))?,
                );
            }
            "--miss-per-mille" => {
                miss_per_mille = it
                    .next()
                    .ok_or("--miss-per-mille needs a value")?
                    .parse()
                    .map_err(|e| format!("bad per-mille: {e}"))?;
            }
            "--profile-out" => {
                profile_out = Some(PathBuf::from(
                    it.next().ok_or("--profile-out needs a path")?,
                ));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a path")?,
                ));
            }
            "--chaos" => {
                let name = it.next().ok_or("--chaos needs off|mild|stress")?;
                chaos = loadgen::ChaosProfile::parse(&name)
                    .ok_or(format!("unknown chaos profile '{name}' (off|mild|stress)"))?;
            }
            "--no-verify" => verify = false,
            "--help" | "-h" => {
                return Err("usage: repro [artifact-ids|all] [--scale quick|standard|full] [--seed N] [--out DIR] [--threads N] [--fault-profile none|cellular|stress] [--queue heap|wheel] [--metrics] [--no-metrics] [--progress] [--quiet]".into());
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let serve = serving::ServeArgs {
        endpoints_out: endpoints_out.unwrap_or_else(|| out.join("serve-endpoints.txt")),
        max_queries,
        queries: soak_queries,
        qps,
        miss_per_mille,
        profile_out,
        metrics_out,
        verify,
        chaos,
        quiet,
    };
    Ok(Args {
        targets,
        scale,
        seed,
        out,
        ecs,
        three_g,
        threads,
        queue,
        fault_profile,
        metrics_table,
        write_metrics,
        progress,
        quiet,
        serve,
    })
}

fn config_for(scale: &str, seed: u64) -> Result<StudyConfig, String> {
    match scale {
        // Tiny: CI-sized smoke run.
        "quick" => Ok(StudyConfig::quick(seed)),
        // Standard: paper-scale world, six-week campaign at 4 h cadence.
        "standard" => Ok(StudyConfig::standard(seed)),
        // Full: paper-scale world, five months at 2 h cadence (slow).
        "full" => Ok(StudyConfig {
            world: WorldConfig {
                seed,
                ..WorldConfig::default()
            },
            campaign: CampaignConfig {
                days: 150,
                experiments_per_day: 12,
                spec: ExperimentSpec::default(),
                external_probe_day: Some(75),
            },
            parallelism: Parallelism::Auto,
        }),
        other => Err(format!("unknown scale '{other}' (quick|standard|full)")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    let mut config = match config_for(&args.scale, args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    config.world.ecs = args.ecs;
    config.world.three_g_era = args.three_g;
    config.world.fault_profile = args.fault_profile;
    config.world.queue = args.queue;
    if let Some(n) = args.threads {
        config.parallelism = Parallelism::Threads(n);
    }
    // The serving plane: a live socket front end over the same world the
    // batch campaign uses. Exits directly — artifacts are batch-only.
    match args.targets.first().map(String::as_str) {
        Some("serve") => std::process::exit(serving::run_serve(config.world, &args.serve)),
        Some("soak") => std::process::exit(serving::run_soak(config.world, &args.serve)),
        _ => {}
    }
    let mut prof = Profiler::new(!args.quiet);
    if !args.quiet {
        if args.ecs {
            eprintln!("repro: ECS (RFC 7871) deployment enabled");
        }
        if args.three_g {
            eprintln!("repro: building the pre-LTE (Xu et al.) era");
        }
        if args.fault_profile.is_active() {
            eprintln!(
                "repro: fault profile '{}' active (hardened client path engaged)",
                args.fault_profile.label()
            );
        }
        eprintln!(
            "repro: building world (scale={}, seed={}) ...",
            args.scale, args.seed
        );
    }

    let build = Stage::begin("build world");
    let mut study = Study::new(config);
    prof.record(build.end());
    if !args.quiet {
        eprintln!(
            "repro: world ready ({} nodes); running campaign ({} days x {}/day x {} devices, {} threads) ...",
            study.world.node_count(),
            study.campaign.days,
            study.campaign.experiments_per_day,
            study.world.device_count(),
            study.parallelism.resolve(study.world.carrier_count()),
        );
    }

    let tick = |ev: ProgressEvent<'_>| {
        eprintln!(
            "repro: [shard {}] {} day {}/{} — {} records, {} events",
            ev.shard,
            ev.carrier,
            ev.day + 1,
            ev.days,
            ev.records,
            ev.events
        );
    };
    let progress: Option<&cdns::measure::ProgressFn> = if args.progress && !args.quiet {
        Some(&tick)
    } else {
        None
    };
    let campaign = Stage::begin("campaign");
    let run = study.run_observed(progress);
    let dataset = run.dataset;
    let events = study.world.total_events();
    prof.record_with_rates(
        campaign.end(),
        &[
            (events, "events"),
            (dataset.records.len() as u64, "experiments"),
        ],
    );
    let per_shard: Vec<u64> = study
        .world
        .shards
        .iter()
        .map(|s| s.net.stats.events)
        .collect();
    prof.shard_imbalance("events", &per_shard);
    prof.note(format!(
        "{} experiments, {} resolutions, {} engine events",
        dataset.records.len(),
        dataset.resolution_count(),
        events,
    ));

    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("repro: cannot create {}: {e}", args.out.display());
        std::process::exit(1);
    }
    // Raw dataset tables.
    if let Err(e) = dataset.write_csvs(&args.out) {
        eprintln!("repro: cannot write raw tables: {e}");
    }
    // Sim-plane metrics: deterministic bytes, part of the replay contract.
    if args.write_metrics {
        let path = args.out.join("metrics.json");
        if let Err(e) = fs::write(&path, run.metrics.to_json()) {
            eprintln!("repro: cannot write {}: {e}", path.display());
        }
    }

    let run_all = args.targets.iter().any(|t| t == "all");
    let artifacts = if run_all {
        figures::all_artifacts(&dataset)
    } else {
        let mut v = Vec::new();
        for t in &args.targets {
            match figures::artifact_by_id(&dataset, t) {
                Some(a) => v.push(a),
                None => {
                    eprintln!("repro: unknown artifact '{t}'");
                    std::process::exit(2);
                }
            }
        }
        v
    };
    for a in &artifacts {
        println!("{}", a.text);
        if let Some(csv) = &a.csv {
            let path = args.out.join(format!("{}.csv", a.id));
            if let Err(e) = fs::write(&path, csv) {
                eprintln!("repro: cannot write {}: {e}", path.display());
            }
        }
    }
    // The metrics summary table is opt-in stdout: the default stream stays
    // byte-stable for consumers that parse artifact text.
    if args.metrics_table {
        print!("{}", run.metrics.render_table("campaign vitals"));
    }
    if !args.quiet {
        let report = prof.report();
        if !report.is_empty() {
            eprint!("repro: host-plane profile\n{report}");
        }
        eprintln!(
            "repro: wrote {} artifacts + raw tables to {}",
            artifacts.len(),
            args.out.display()
        );
    }
}
