//! Carrier audit: the §4 methodology applied to one carrier from the
//! inside — discover the indirect resolver structure with whoami probes,
//! measure resolver distances, and demonstrate the network's opaqueness to
//! outside probing.
//!
//! Run with: `cargo run --release --example carrier_audit [carrier-name]`

use behind_the_curtain::dnssim::client::whoami;
use behind_the_curtain::measure::{build_world, WorldConfig};
use behind_the_curtain::netsim::addr::Prefix;
use std::collections::{HashMap, HashSet};

fn main() {
    let carrier_name = std::env::args().nth(1).unwrap_or_else(|| "AT&T".into());
    let mut world = build_world(WorldConfig::quick(7));
    let Some(carrier_idx) = world.carrier_index(&carrier_name) else {
        eprintln!(
            "unknown carrier '{carrier_name}'; try: {}",
            (0..world.carrier_count())
                .map(|i| world.profile(i).name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    println!("== Auditing {carrier_name} from inside the network ==\n");

    // 1. whoami probes from every device of this carrier reveal the
    //    external-facing resolvers behind the configured address.
    let probe_zone = world.backbone.probe_zone.clone();
    let shard = &mut world.shards[carrier_idx];
    let device_count = shard.devices.len();
    let mut pairs: HashMap<(std::net::Ipv4Addr, std::net::Ipv4Addr), usize> = HashMap::new();
    for di in 0..device_count {
        let (node, configured) = {
            let d = &shard.devices[di];
            (d.node, d.configured_dns)
        };
        for _ in 0..6 {
            let (_, ext) = whoami(&mut shard.net, node, configured, &probe_zone);
            if let Some(ext) = ext {
                *pairs.entry((configured, ext)).or_insert(0) += 1;
            }
        }
    }
    println!("LDNS pairs observed (configured -> external x count):");
    let mut sorted: Vec<_> = pairs.iter().collect();
    sorted.sort();
    for ((cf, ext), n) in sorted {
        println!("  {cf:<16} -> {ext:<16} x{n}");
    }
    let externals: HashSet<_> = pairs.keys().map(|(_, e)| *e).collect();
    let prefixes: HashSet<_> = externals.iter().map(|e| Prefix::slash24_of(*e)).collect();
    println!(
        "\n{} external resolvers across {} /24 prefixes (indirect resolution: the\nconfigured resolver is never the one the authoritative side sees)\n",
        externals.len(),
        prefixes.len()
    );

    // 2. Resolver distance from the device (Fig. 4's measurement).
    let (node, configured) = {
        let d = shard.devices.first().expect("carrier has devices");
        (d.node, d.configured_dns)
    };
    let cf_ping = shard.net.ping_train(node, configured, 3);
    println!(
        "ping configured resolver {}: {}",
        configured,
        cf_ping
            .min_rtt()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "no answer".into())
    );
    if let Some(&ext) = externals.iter().next() {
        let ext_ping = shard.net.ping_train(node, ext, 3);
        println!(
            "ping external resolver   {}: {}",
            ext,
            ext_ping
                .min_rtt()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "no answer (some tiers ignore internal probes)".into())
        );
    }

    // 3. Opaqueness: the same resolvers probed from a university vantage
    //    point outside the carrier (Table 4's experiment).
    println!("\nFrom the university vantage point (outside the carrier):");
    let university = world.backbone.university;
    let mut ping_ok = 0;
    let mut trace_ok = 0;
    let ext_list: Vec<_> = shard
        .carrier
        .external_resolvers
        .iter()
        .map(|&(_, a)| a)
        .collect();
    for &addr in &ext_list {
        if shard.net.ping_train(university, addr, 2).reachable() {
            ping_ok += 1;
        }
        if shard.net.traceroute(university, addr, 16).reached {
            trace_ok += 1;
        }
    }
    println!(
        "  ping reached {ping_ok}/{} external resolvers; traceroute reached {trace_ok}/{}",
        ext_list.len(),
        ext_list.len()
    );
    println!("  (cellular firewalls drop unsolicited probes — the paper's §4.4)");

    // 4. Show one blocked probe's journey with the packet tracer.
    if let Some(&target) = ext_list.first() {
        println!(
            "
Packet trace of one university ping into the carrier:"
        );
        shard.net.tracer.enable(32);
        let _ = shard.net.ping_train(university, target, 1);
        for entry in shard.net.tracer.entries() {
            println!("  {entry}");
        }
        shard.net.tracer.disable();
    }
}
