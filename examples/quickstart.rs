//! Quickstart: build a (reduced) simulated world, run a short measurement
//! campaign, and print the headline findings of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use behind_the_curtain::measure::ResolverKind;
use behind_the_curtain::{figures, Study, StudyConfig};

fn main() {
    // A reduced world: same six carriers and structure, smaller fleet.
    let mut study = Study::new(StudyConfig::quick(2014));
    println!(
        "world: {} nodes, {} devices across {} carriers",
        study.world.node_count(),
        study.world.device_count(),
        study.world.carrier_count(),
    );

    let dataset = study.run();
    println!(
        "campaign: {} experiments, {} DNS resolutions\n",
        dataset.records.len(),
        dataset.resolution_count(),
    );

    // The two headline tables.
    println!("{}", figures::table3(&dataset).text);
    println!("{}", figures::table4(&dataset).text);

    // The abstract's headline number: how often public DNS's replicas were
    // equal or better than the carrier's own choice.
    println!("Public DNS replica quality vs carrier DNS (abstract's claim):");
    for c in 0..dataset.carrier_names.len() {
        let frac =
            behind_the_curtain::analysis::public_equal_or_better(&dataset, c, ResolverKind::Google);
        println!(
            "  {:<12} google replicas equal-or-better {:.0}% of the time",
            dataset.carrier_names[c],
            frac * 100.0
        );
    }
}
