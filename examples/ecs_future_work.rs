//! The paper's §9 future work, implemented: deploy RFC 7871 EDNS
//! Client-Subnet in the carriers (NAT-aware) and let CDNs geolocate the
//! announced egress subnets. Runs the same campaign twice — without and
//! with ECS — and compares the replica-selection damage.
//!
//! Run with: `cargo run --release --example ecs_future_work`

use behind_the_curtain::analysis::{relative_replica_latency, Cdf};
use behind_the_curtain::measure::{
    build_world, run_campaign, CampaignConfig, Dataset, ResolverKind, WorldConfig,
};

fn campaign(ecs: bool) -> Dataset {
    let mut config = WorldConfig::quick(1407);
    config.ecs = ecs;
    let mut world = build_world(config);
    run_campaign(&mut world, &CampaignConfig::quick())
}

/// Mean ping RTT (ms) of the replicas the carrier DNS handed out.
fn mean_local_replica_ms(ds: &Dataset, carrier: usize) -> f64 {
    let cdf = Cdf::from_iter(ds.of_carrier(carrier).flat_map(|r| {
        r.replica_probes
            .iter()
            .filter(|p| p.via == ResolverKind::Local)
            .filter_map(|p| p.rtt_us.map(|us| us as f64 / 1000.0))
    }));
    cdf.mean().unwrap_or(f64::NAN)
}

fn main() {
    println!("Running the same campaign without and with ECS...\n");
    let base = campaign(false);
    let ecs = campaign(true);

    println!(
        "{:<12} {:>24} {:>24}   {:>20}",
        "carrier", "local replica mean (b/e)", "public strictly better", "median pub-vs-local"
    );
    for c in 0..base.carrier_names.len() {
        let bm = mean_local_replica_ms(&base, c);
        let em = mean_local_replica_ms(&ecs, c);
        let strictly_better = |ds: &Dataset| {
            let cdf = relative_replica_latency(ds, c, ResolverKind::Google);
            // fraction strictly below zero = public strictly faster
            cdf.fraction_leq(-1e-9) * 100.0
        };
        let med = |ds: &Dataset| {
            relative_replica_latency(ds, c, ResolverKind::Google)
                .median()
                .unwrap_or(0.0)
        };
        println!(
            "{:<12} {:>11.1} / {:<8.1} {:>10.0}% -> {:<6.0}% {:>9.1}% -> {:<.1}%",
            base.carrier_names[c],
            bm,
            em,
            strictly_better(&base),
            strictly_better(&ecs),
            med(&base),
            med(&ecs),
        );
    }
    println!(
        "\nReading: with ECS the CDN localizes the *client subnet* instead of the\n\
         churning resolver. The replicas the carrier DNS hands out get faster, and\n\
         public DNS loses its localization edge (its strictly-better share and the\n\
         median gap both shrink toward zero) — the fix the paper's §9 sketches."
    );
}
