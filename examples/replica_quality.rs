//! Replica quality over time: follow one device for a simulated week and
//! watch its CDN replica assignments churn with its resolver — the
//! mechanism behind Fig. 2's latency inflation.
//!
//! Run with: `cargo run --release --example replica_quality`

use behind_the_curtain::measure::{
    build_world, run_experiment, ExperimentSpec, ResolverKind, WorldConfig,
};
use behind_the_curtain::netsim::addr::Prefix;
use behind_the_curtain::netsim::{SimDuration, SimTime};
use std::collections::HashMap;

fn main() {
    let mut world = build_world(WorldConfig::quick(99));
    let spec = ExperimentSpec::light();
    let device_idx = 0;
    let carrier = world.device(device_idx).carrier;
    println!(
        "Following device 0 on {} for 7 simulated days (one experiment per 4h)\n",
        world.profile(carrier).name
    );

    // replica -> (sum_ms, count) for best-replica accounting.
    let mut replica_lat: HashMap<std::net::Ipv4Addr, (f64, u32)> = HashMap::new();
    println!("day  ext-resolver      ext /24           buzzfeed replicas (via carrier DNS)");
    for step in 0..(7 * 6) {
        let t = SimTime::ZERO + SimDuration::from_hours(4 * step as u64);
        world.shards[0].net.skip_to(t);
        let record = run_experiment(&mut world, device_idx, step, &spec);
        let ext = record.local_external();
        let buzz_idx = 1u8; // www.buzzfeed.com in the catalog
        let replicas: Vec<_> = record
            .replica_probes
            .iter()
            .filter(|p| p.via == ResolverKind::Local && p.domain_idx == buzz_idx)
            .collect();
        for p in &replicas {
            if let Some(us) = p.rtt_us {
                let e = replica_lat.entry(p.addr).or_insert((0.0, 0));
                e.0 += us as f64 / 1000.0;
                e.1 += 1;
            }
        }
        if step % 6 == 0 {
            let names: Vec<String> = replicas
                .iter()
                .map(|p| {
                    format!(
                        "{}({})",
                        p.addr,
                        p.rtt_us
                            .map(|us| format!("{:.0}ms", us as f64 / 1000.0))
                            .unwrap_or_else(|| "?".into())
                    )
                })
                .collect();
            println!(
                "{:>3}  {:<16}  {:<16}  {}",
                step / 6,
                ext.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                ext.map(|e| Prefix::slash24_of(e).to_string())
                    .unwrap_or_else(|| "-".into()),
                names.join(" "),
            );
        }
    }

    // Fig. 2's statistic for this one user.
    let means: Vec<(std::net::Ipv4Addr, f64)> = replica_lat
        .iter()
        .map(|(&a, &(sum, n))| (a, sum / n as f64))
        .collect();
    if let Some(best) = means.iter().map(|&(_, m)| m).reduce(f64::min) {
        println!("\nReplicas seen for www.buzzfeed.com and their inflation vs the best:");
        let mut sorted = means.clone();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        for (addr, mean) in sorted {
            println!(
                "  {:<16} mean {:.1}ms  (+{:.0}%)",
                addr,
                mean,
                (mean - best) / best * 100.0
            );
        }
        println!(
            "\nThe user keeps being redirected among {} replicas; the worst is {:.0}% slower\nthan the best — the differential performance of Fig. 2.",
            means.len(),
            (means
                .iter()
                .map(|&(_, m)| m)
                .fold(f64::MIN, f64::max)
                - best)
                / best
                * 100.0
        );
    }
}
