//! The §2 motivation, measured: rebuild the carriers as Xu et al. saw them
//! in the 3G era (4–6 gateways, no LTE) and compare against the LTE world —
//! egress-point counts, radio-dominated latency, and how much replica
//! selection matters in each era.
//!
//! Run with: `cargo run --release --example era_comparison`

use behind_the_curtain::analysis::{egress_points, resolution_cdf, Cdf};
use behind_the_curtain::measure::{
    build_world, run_campaign, CampaignConfig, Dataset, ResolverKind, WorldConfig,
};

fn campaign(three_g: bool) -> Dataset {
    let mut config = WorldConfig::quick(1963);
    config.three_g_era = three_g;
    // Era comparison needs the real gateway counts, not the quick scale-down.
    config.gateway_scale = 1.0;
    let mut world = build_world(config);
    run_campaign(&mut world, &CampaignConfig::quick())
}

/// Spread of replica RTTs relative to end-to-end latency: when the radio
/// dominates (3G), replica choice barely matters — Xu et al.'s conclusion.
fn replica_spread_share(ds: &Dataset, carrier: usize) -> f64 {
    let rtts = Cdf::from_iter(ds.of_carrier(carrier).flat_map(|r| {
        r.replica_probes
            .iter()
            .filter(|p| p.via == ResolverKind::Local)
            .filter_map(|p| p.rtt_us.map(|us| us as f64 / 1000.0))
    }));
    match (rtts.quantile(0.9), rtts.quantile(0.1), rtts.median()) {
        (Some(hi), Some(lo), Some(med)) if med > 0.0 => (hi - lo) / med,
        _ => 0.0,
    }
}

fn main() {
    println!("Building the 3G era (Xu et al. 2011) and the LTE era (this paper)...\n");
    let g3 = campaign(true);
    let lte = campaign(false);

    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>16} {:>12}",
        "carrier", "egress (3G)", "egress (LTE)", "DNS p50 (3G)", "DNS p50 (LTE)", "spread 3G/LTE"
    );
    for c in 0..g3.carrier_names.len() {
        let e3 = egress_points(&g3, c).len();
        let e4 = egress_points(&lte, c).len();
        let p50_3g = resolution_cdf(&g3, c, ResolverKind::Local)
            .median()
            .unwrap_or(0.0);
        let p50_lte = resolution_cdf(&lte, c, ResolverKind::Local)
            .median()
            .unwrap_or(0.0);
        println!(
            "{:<12} {:>14} {:>14} {:>14.0}ms {:>14.0}ms {:>6.2}/{:.2}",
            g3.carrier_names[c],
            e3,
            e4,
            p50_3g,
            p50_lte,
            replica_spread_share(&g3, c),
            replica_spread_share(&lte, c),
        );
    }
    println!(
        "\nReading: the 3G world has the 4–6 egress points Xu et al. reported and\n\
         radio-dominated latency — replica selection barely matters there. The LTE\n\
         world multiplies egress points and collapses radio latency, which is what\n\
         makes replica selection (and the paper's findings) matter now (§2)."
    );
}
