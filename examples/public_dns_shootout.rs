//! Public DNS shootout (§6): for each carrier, compare the carrier's own
//! DNS against Google-like and OpenDNS-like public resolvers on both
//! resolution time and the quality of the replicas they hand out.
//!
//! Run with: `cargo run --release --example public_dns_shootout`

use behind_the_curtain::analysis::{
    public_equal_or_better, relative_replica_latency, resolution_cdf,
};
use behind_the_curtain::measure::{build_world, WorldConfig};
use behind_the_curtain::measure::{run_campaign, CampaignConfig, ResolverKind};

fn main() {
    let mut world = build_world(WorldConfig::quick(31));
    let cfg = CampaignConfig::quick();
    println!(
        "Running a {}-day campaign on {} devices...\n",
        cfg.days,
        world.device_count()
    );
    let ds = run_campaign(&mut world, &cfg);

    println!(
        "{:<12} {:>10} {:>10} {:>10}   {:>12} {:>14}",
        "carrier", "local p50", "google p50", "odns p50", "median Δrep", "pub ≥ local"
    );
    for c in 0..ds.carrier_names.len() {
        let p50 = |kind| {
            resolution_cdf(&ds, c, kind)
                .median()
                .map(|v| format!("{v:.0}ms"))
                .unwrap_or_else(|| "-".into())
        };
        let rel = relative_replica_latency(&ds, c, ResolverKind::Google);
        let eq_or_better = public_equal_or_better(&ds, c, ResolverKind::Google);
        println!(
            "{:<12} {:>10} {:>10} {:>10}   {:>11}% {:>13.0}%",
            ds.carrier_names[c],
            p50(ResolverKind::Local),
            p50(ResolverKind::Google),
            p50(ResolverKind::OpenDns),
            rel.median().map(|v| format!("{v:+.1}")).unwrap_or_default(),
            eq_or_better * 100.0,
        );
    }
    println!(
        "\nReading: the carrier's own DNS resolves faster (it is closer to the radio),\n\
         yet the replicas chosen through public DNS are equal or better most of the\n\
         time — because cellular LDNS is such a poor localization signal (the paper's\n\
         central finding)."
    );
}
