//! `Arbitrary` and `any::<T>()`.

use crate::strategy::{AnyOf, Strategy};
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// That strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(PhantomData)
            }
        }
    )+};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = AnyOf<[u8; N]>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(PhantomData)
    }
}

impl Arbitrary for crate::sample::Index {
    type Strategy = crate::sample::IndexStrategy;
    fn arbitrary() -> Self::Strategy {
        crate::sample::IndexStrategy
    }
}
