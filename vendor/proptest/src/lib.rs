//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace's test suites use:
//! the `Strategy` trait with `prop_map`, `any::<T>()`, `Just`, tuple and
//! range strategies, `collection::vec`, `string::string_regex` (a small
//! regex-subset generator), `prop_oneof!`, `prop::sample::Index`, and the
//! `proptest!` macro with `ProptestConfig::with_cases`.
//!
//! Cases are generated from a seeded deterministic RNG (seed derived from
//! the test name), so failures reproduce across runs. There is no shrinking:
//! a failing case reports its case number and panics with the original
//! assertion message.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::sample;
        pub use crate::{collection, string};
    }
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
            });
        }
    )*};
}

/// `prop_assert!`: asserts inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// `prop_assume!`: skips the remainder of the case when the assumption does
/// not hold. (The case still counts toward the configured total.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// `prop_oneof!`: uniform choice between strategies producing the same value
/// type. (The weighted `w => strategy` form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(std::boxed::Box::new($strat)),+])
    };
}
