//! `prop::sample`: the `Index` helper.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A position into a collection whose size is unknown at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub(crate) usize);

impl Index {
    /// Resolves against a collection of `len` elements. `len` must be > 0.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

/// Strategy producing [`Index`].
#[derive(Debug, Clone, Copy)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn new_value(&self, rng: &mut TestRng) -> Index {
        Index(rng.gen::<u64>() as usize)
    }
}
