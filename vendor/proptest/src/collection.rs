//! `prop::collection`: sized collections of strategy-generated values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
