//! The case runner: seeded, deterministic, no shrinking.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG strategies draw from.
pub type TestRng = StdRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `config.cases` generated cases of `body`. The RNG seed derives from
/// the test name (override with `PROPTEST_SEED`), so failures reproduce.
pub fn run_cases(config: &ProptestConfig, name: &str, body: impl Fn(&mut TestRng)) {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest '{name}': case {case}/{} failed (seed {seed}; \
                 rerun with PROPTEST_SEED={seed})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}
