//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use rand::distributions::SampleUniform;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the run's RNG.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy for type erasure.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: no value satisfied {:?} in 1000 draws",
            self.whence
        );
    }
}

/// Uniform choice between strategies of the same value type
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// A string literal is a regex-subset pattern strategy.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .expect("invalid regex pattern used as strategy")
            .new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9,
    S10 / 10
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9,
    S10 / 10,
    S11 / 11
);

/// Marker so `any::<T>()` has a concrete strategy type.
pub struct AnyOf<T>(pub(crate) PhantomData<T>);

impl<T> Strategy for AnyOf<T>
where
    rand::Standard: rand::Distribution<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}
