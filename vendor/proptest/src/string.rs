//! `string_regex`: generates strings matching a small regex subset.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! `[a-z0-9_-]` (ranges and literals; `-` last is literal), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded forms capped at 8
//! repeats). Alternation, groups, and anchors are not supported — the
//! workspace's patterns do not use them.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Pattern-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

/// One regex element: a set of candidate chars and a repeat range.
#[derive(Debug, Clone)]
struct Elem {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Strategy producing strings that match the compiled pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    elems: Vec<Elem>,
}

/// Compiles `pattern` into a generator strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut elems = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => {
                let e = chars
                    .next()
                    .ok_or_else(|| Error("dangling escape".into()))?;
                vec![unescape(e)]
            }
            '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!("unsupported regex construct: {c}")))
            }
            '.' => (' '..='~').collect(),
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars)?;
        elems.push(Elem {
            chars: set,
            min,
            max,
        });
    }
    Ok(RegexGeneratorStrategy { elems })
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .ok_or_else(|| Error("unterminated character class".into()))?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                if set.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                return Ok(set);
            }
            '-' => {
                // A range if we have a pending start and a following end;
                // literal '-' otherwise (e.g. `[a-z-]`).
                match (pending.take(), chars.peek().copied()) {
                    (Some(start), Some(end)) if end != ']' => {
                        chars.next();
                        if start > end {
                            return Err(Error(format!("invalid range {start}-{end}")));
                        }
                        set.extend(start..=end);
                    }
                    (p, _) => {
                        if let Some(p) = p {
                            set.push(p);
                        }
                        set.push('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                let e = chars
                    .next()
                    .ok_or_else(|| Error("dangling escape in class".into()))?;
                pending = Some(unescape(e));
            }
            other => {
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().map_err(|_| bad(&body))?;
                            let hi = if hi.trim().is_empty() {
                                lo + 8
                            } else {
                                hi.trim().parse().map_err(|_| bad(&body))?
                            };
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().map_err(|_| bad(&body))?;
                            (n, n)
                        }
                    };
                    if lo > hi {
                        return Err(bad(&body));
                    }
                    return Ok((lo, hi));
                }
                body.push(c);
            }
            Err(Error("unterminated quantifier".into()))
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

fn bad(body: &str) -> Error {
    Error(format!("invalid quantifier {{{body}}}"))
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for elem in &self.elems {
            let n = rng.gen_range(elem.min..=elem.max);
            for _ in 0..n {
                out.push(elem.chars[rng.gen_range(0..elem.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_matching_strings() {
        let s = string_regex("[a-z0-9_][a-z0-9_-]{0,14}").unwrap();
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() <= 15, "{v:?}");
            let mut cs = v.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first.is_ascii_digit() || first == '_');
            for c in cs {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-',
                    "{v:?}"
                );
            }
        }
    }

    #[test]
    fn printable_class_covers_space_to_tilde() {
        let s = string_regex("[ -~]{0,40}").unwrap();
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v.len() <= 40);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
    }
}
