//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate re-implements exactly the subset of the `rand` 0.8 API the
//! workspace uses: the `RngCore`/`SeedableRng`/`Rng` traits, `StdRng` and
//! `SmallRng` (both xoshiro256++ seeded via SplitMix64), `gen`, `gen_range`,
//! and `gen_bool`. Streams are deterministic and platform-independent, which
//! is all the simulator requires — it never needs compatibility with the
//! upstream crate's ChaCha streams, only self-consistency.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core random-number generation: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does for small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and stream deriver.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`, like upstream `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // Compare 53 random mantissa bits against p, exactly as a uniform
        // f64 draw would.
        let v: f64 = self.gen();
        v < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
