//! Concrete generators: `StdRng` and `SmallRng`, both xoshiro256++.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ core. Fast, 256-bit state, passes BigCrush; more than
/// adequate for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }
}

/// The workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256PlusPlus);

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

/// A small, fast generator; identical core here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = rng.gen_range(-40.0..40.0);
            assert!((-40.0..40.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
