//! Sequence helpers: the `SliceRandom` subset.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
