//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A type whose values can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                // Multiply-shift bounded draw (bias < 2^-64 * span).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $u).wrapping_add(v as $u)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((low as $u).wrapping_add(v as $u)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit: f64 = Standard.sample(rng);
                let v = low + unit as $t * (high - low);
                // Floating rounding can land exactly on `high`; clamp back
                // into the half-open interval.
                if v >= high { <$t>::from_bits(high.to_bits() - 1) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit: f64 = Standard.sample(rng);
                low + unit as $t * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}
