//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! `Criterion::{bench_function, benchmark_group}`, groups with
//! `throughput`/`sample_size`/`finish`, `Bencher::{iter, iter_with_setup}`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window; mean ns/iter (plus
//! throughput, when set) is printed to stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured throughput units for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    mean_s: f64,
}

impl Bencher {
    /// Times `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~50 ms elapse to pick an
        // iteration count for the measurement window.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        // Measurement window: ~250 ms, at least 5 iterations.
        let iters = ((0.25 / per_iter.max(1e-9)) as u64).clamp(5, 5_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_s = start.elapsed().as_secs_f64() / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded from
    /// timing only approximately: per-batch, like criterion's
    /// `BatchSize::PerIteration`).
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        // Keep the timed portion close to the plain-iter window.
        while total < Duration::from_millis(250) && iters < 5_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_s = total.as_secs_f64() / iters.max(1) as f64;
    }
}

fn report(name: &str, mean_s: f64, throughput: Option<Throughput>) {
    let ns = mean_s * 1e9;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  ({:.1} MiB/s)", b as f64 / mean_s / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 / mean_s),
        None => String::new(),
    };
    println!("{name:<50} {human:>12}/iter{rate}");
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(name, b.mean_s, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.mean_s,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
