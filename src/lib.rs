#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `behind-the-curtain` — reproduction of *Behind the Curtain: Cellular DNS
//! and Content Replica Selection* (Rula & Bustamante, IMC 2014) as a Rust
//! workspace.
//!
//! This facade crate re-exports the suite (`cdns`) and its substrates so
//! the examples and integration tests have one import surface. See
//! `README.md` for a tour, `DESIGN.md` for the architecture and the
//! simulation-substitution argument, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ```no_run
//! use behind_the_curtain::{Study, StudyConfig};
//!
//! let mut study = Study::new(StudyConfig::quick(42));
//! let dataset = study.run();
//! println!("{} experiments", dataset.records.len());
//! ```

pub use cdns::figures;
pub use cdns::{all_artifacts, artifact_by_id, Artifact, Study, StudyConfig};

pub use analysis;
pub use cdnsim;
pub use cellsim;
pub use dnssim;
pub use dnswire;
pub use measure;
pub use netsim;
pub use obs;
