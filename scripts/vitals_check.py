#!/usr/bin/env python3
"""CI vitals check over the repro smoke run's observability output.

Usage:
    vitals_check.py <metrics.json> <host-profile.txt> <baseline.json> <fault-profile>
    vitals_check.py --bench <fresh-bench.json> <baseline.json> <trajectory.json...>
    vitals_check.py --soak <serve-metrics.json> <soak-profile.json> <chaos-profile>

Smoke-run mode has two gates, one per observability plane:

1. Sim plane (`metrics.json`): the baseline's required counters must be
   nonzero — a campaign that ran but counted nothing means the harvest
   wiring broke. Under the `cellular` fault profile the chaos layer must
   also have injected faults. The counter lists live in the baseline JSON
   (`required_counters` / `required_counters_cellular`) so adding an
   instrument is a data change, not a script edit.
2. Host plane (captured stderr profile): the campaign stage's events/sec
   throughput must not regress more than the configured tolerance below
   the low edge of the checked-in baseline band. The band's low edge is
   set conservatively for shared CI runners; the tolerance absorbs
   runner-to-runner noise on top.

Bench mode gates a fresh `queue_bench` run against the recorded
`BENCH_*.json` trajectory:

1. Absolute floor: the wheel's fresh events/s must clear the same
   conservative band low edge the smoke run uses.
2. Relative trajectory: the fresh wheel-over-heap speedup (both sides
   measured on the same machine in the same run, so runner speed cancels)
   must not fall more than the tolerance below the latest recorded
   baseline's speedup.

Stdlib only — the repo vendors all Rust deps and installs nothing in CI.
"""

import json
import re
import sys

DEFAULT_REQUIRED = ["campaign.experiments", "campaign.lookups", "dns.cache.hits"]
DEFAULT_REQUIRED_CELLULAR = ["fault.injected"]

# Every sim-plane metric name the workspace may emit that is not already a
# gated counter in vitals-baseline.json. This is the shared allowlist for
# detlint rule D12 (which cross-checks it against the actual obs mutator
# call sites, both directions) and for the unknown-counter check below:
# adding an instrument means adding its name here or to the baseline, so
# typo'd or orphaned counters fail CI instead of silently exporting.
KNOWN_METRICS = [
    "campaign.completed_backlog",
    "campaign.identity_probes",
    "campaign.replica_probes",
    "campaign.resolver_probes",
    "dns.cache.ambient_hits",
    "dns.cache.evictions",
    "dns.cache.misses",
    "dns.forwarder.cache_answers",
    "dns.forwarder.relayed",
    "dns.forwarder.repicks",
    "dns.forwarder.returned",
    "dns.lookup.outcomes",
    "dns.lookup_us",
    "dns.resolver.cache_answers",
    "dns.resolver.client_queries",
    "dns.resolver.fault_dropped",
    "dns.resolver.fault_servfails",
    "dns.resolver.fault_truncations",
    "dns.resolver.servfails",
    "dns.resolver.upstream_queries",
    "loadgen.answered",
    "loadgen.chaos_injected",
    "loadgen.latency_us",
    "loadgen.mismatches",
    "loadgen.sent",
    "loadgen.shed_retries",
    "loadgen.tc_retries",
    "loadgen.wire_timeouts",
    "net.delivered",
    "net.drops_by_cause",
    "net.events",
    "net.events_by_kind",
    "net.forwards",
    "net.queue_depth",
    "net.timeouts",
    "serve.conn_evicted",
    "serve.drain_completed",
    "serve.dropped",
    "serve.formerr",
    "serve.notimp",
    "serve.outcomes",
    "serve.queries",
    "serve.shed",
    "serve.sim_latency_us",
    "serve.truncated",
]

# Server-side counters a chaos soak must have driven nonzero, per chaos
# profile: the whole point of injecting hostile wire traffic is to
# exercise the typed reject, shed, and eviction paths, so a soak that
# counted none of them means the chaos lane (or the server's defenses)
# silently disappeared.
SOAK_REQUIRED = {
    "mild": ["serve.queries", "serve.formerr"],
    "stress": ["serve.queries", "serve.formerr", "serve.shed", "serve.conn_evicted"],
}


def counter_total(metrics, name):
    return sum(c["value"] for c in metrics.get("counters", []) if c["name"] == name)


def parse_events_per_sec(profile_text):
    """Reads the `N events/s` rate from the host-plane profile, undoing the
    compact `912` / `4.1k` / `7.6M` rendering."""
    m = re.search(r"([0-9.]+)([kM]?) events/s", profile_text)
    if not m:
        return None
    return float(m.group(1)) * {"": 1.0, "k": 1e3, "M": 1e6}[m.group(2)]


def check_smoke(argv):
    metrics_path, profile_path, baseline_path, fault_profile = argv
    with open(metrics_path) as f:
        metrics = json.load(f)
    with open(profile_path) as f:
        profile_text = f.read()
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    known = set(KNOWN_METRICS)
    known.update(baseline.get("required_counters", DEFAULT_REQUIRED))
    known.update(baseline.get("required_counters_cellular", DEFAULT_REQUIRED_CELLULAR))
    exported = set()
    for plane in ("counters", "gauges", "histograms"):
        exported.update(m["name"] for m in metrics.get(plane, []))
    for name in sorted(exported - known):
        failures.append(f"exported metric {name} is not in the baseline or KNOWN_METRICS")

    required = list(baseline.get("required_counters", DEFAULT_REQUIRED))
    if fault_profile == "cellular":
        required += baseline.get("required_counters_cellular", DEFAULT_REQUIRED_CELLULAR)
    for name in required:
        total = counter_total(metrics, name)
        print(f"vitals: {name} = {total}")
        if total == 0:
            failures.append(f"counter {name} is zero")

    rate = parse_events_per_sec(profile_text)
    low = baseline["events_per_sec"]["low"]
    floor = low * (1.0 - baseline["regression_tolerance"])
    if rate is None:
        failures.append("no `events/s` rate found in the host-plane profile")
    else:
        print(f"vitals: campaign throughput = {rate:.0f} events/s "
              f"(baseline low {low:.0f}, failure floor {floor:.0f})")
        if rate < floor:
            failures.append(
                f"events/sec regressed: {rate:.0f} < {floor:.0f} "
                f"(>{baseline['regression_tolerance']:.0%} below baseline low)")
    return failures


def check_soak(argv):
    """Gates a `repro soak --chaos <profile>` run: the server-side metrics
    artifact must count hostile traffic on every defense path the profile
    exercises, the loadgen profile must show zero lost or diverged
    answers, and no unknown metric names may leak out."""
    metrics_path, profile_path, chaos_profile = argv
    if chaos_profile not in SOAK_REQUIRED:
        return [f"unknown chaos profile '{chaos_profile}' "
                f"(expected one of {sorted(SOAK_REQUIRED)})"]
    with open(metrics_path) as f:
        metrics = json.load(f)
    with open(profile_path) as f:
        profile = json.load(f)

    failures = []

    known = set(KNOWN_METRICS)
    exported = set()
    for plane in ("counters", "gauges", "histograms"):
        exported.update(m["name"] for m in metrics.get(plane, []))
    for name in sorted(exported - known):
        failures.append(f"exported metric {name} is not in KNOWN_METRICS")

    for name in SOAK_REQUIRED[chaos_profile]:
        total = counter_total(metrics, name)
        print(f"vitals: {name} = {total}")
        if total == 0:
            failures.append(f"chaos soak counter {name} is zero")

    # Loadgen side: chaos actually ran, and the hostile-wire invariant
    # held — nothing well-formed was lost and nothing diverged from the
    # ground-truth replay.
    print(f"vitals: chaos_injected = {profile['chaos_injected']}, "
          f"answered = {profile['answered']}, "
          f"mismatches = {profile['mismatches']}, "
          f"chaos_unanswered = {profile['chaos_unanswered']}")
    if profile["chaos_injected"] == 0:
        failures.append("chaos profile requested but chaos_injected is zero")
    if profile["answered"] == 0:
        failures.append("soak answered nothing")
    if profile["mismatches"] != 0:
        failures.append(
            f"{profile['mismatches']} wire answers diverged from ground truth")
    if profile["chaos_unanswered"] != 0:
        failures.append(
            f"{profile['chaos_unanswered']} reply-owed chaos datagrams went unanswered")
    return failures


def bench_ord(path):
    """Orders trajectory files by the PR number in `BENCH_<n>.json`."""
    m = re.search(r"BENCH_(\d+)", path)
    return int(m.group(1)) if m else -1


def check_bench(argv):
    fresh_path, baseline_path = argv[0], argv[1]
    trajectory_paths = sorted(argv[2:], key=bench_ord)
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    tolerance = baseline["regression_tolerance"]

    # The trajectory directory holds records from every bench family
    # (`engine-queue-throughput` wheel runs, `serve-core-qps` serving-plane
    # runs, ...); only records of the fresh run's own kind are comparable.
    kind = fresh.get("bench", "engine-queue-throughput")
    records = []
    for path in trajectory_paths:
        with open(path) as f:
            rec = json.load(f)
        if rec.get("bench", "engine-queue-throughput") == kind:
            records.append((path, rec))

    if kind == "serve-core-qps":
        for path, rec in records:
            print(f"vitals: trajectory {path}: serve core {rec['qps']:.0f} q/s "
                  f"(seed {rec['seed']}, quick={rec['quick']})")
        qps = fresh["qps"]
        low = baseline["serve_qps"]["low"]
        floor = low * (1.0 - tolerance)
        print(f"vitals: fresh serve-core throughput = {qps:.0f} q/s "
              f"(baseline low {low:.0f}, failure floor {floor:.0f})")
        if qps < floor:
            failures.append(
                f"serve-core q/s regressed: {qps:.0f} < {floor:.0f} "
                f"(>{tolerance:.0%} below baseline low)")
        if not records:
            failures.append("no serve-core-qps BENCH_*.json trajectory files given")
            return failures
        # Trajectory-relative floor only against like-for-like runs: a
        # quick CI burst (one cold iteration, small script) sits well
        # below a recorded best-of-3 full run by construction, not by
        # regression. Absolute `serve_qps.low` still gates such runs.
        comparable = [r for _, r in records if r["quick"] == fresh["quick"]]
        if comparable:
            recorded = comparable[-1]["qps"]
            rel_floor = recorded * (1.0 - tolerance)
            print(f"vitals: latest comparable recorded serve-core qps = {recorded:.0f} "
                  f"(failure floor {rel_floor:.0f})")
            if qps < rel_floor:
                failures.append(
                    f"serve-core q/s fell below trajectory: {qps:.0f} < "
                    f"{rel_floor:.0f} (latest recorded {recorded:.0f})")
        return failures

    for path, rec in records:
        print(f"vitals: trajectory {path}: wheel {rec['wheel']['events_per_sec']:.0f} events/s, "
              f"speedup {rec['wheel_speedup_over_heap']:.3f}x "
              f"(seed {rec['seed']}, quick={rec['quick']})")

    wheel_rate = fresh["wheel"]["events_per_sec"]
    low = baseline["events_per_sec"]["low"]
    floor = low * (1.0 - tolerance)
    print(f"vitals: fresh wheel throughput = {wheel_rate:.0f} events/s "
          f"(baseline low {low:.0f}, failure floor {floor:.0f})")
    if wheel_rate < floor:
        failures.append(
            f"bench wheel events/sec regressed: {wheel_rate:.0f} < {floor:.0f} "
            f"(>{tolerance:.0%} below baseline low)")

    if records:
        recorded = records[-1][1]["wheel_speedup_over_heap"]
        fresh_speedup = fresh["wheel_speedup_over_heap"]
        speedup_floor = recorded * (1.0 - tolerance)
        print(f"vitals: fresh wheel speedup = {fresh_speedup:.3f}x "
              f"(latest recorded {recorded:.3f}x, failure floor {speedup_floor:.3f}x)")
        if fresh_speedup < speedup_floor:
            failures.append(
                f"wheel-over-heap speedup regressed: {fresh_speedup:.3f}x < "
                f"{speedup_floor:.3f}x (latest trajectory {recorded:.3f}x)")
    else:
        failures.append("no BENCH_*.json trajectory files given")
    return failures


def main():
    argv = sys.argv[1:]
    if len(argv) >= 3 and argv[0] == "--bench":
        failures = check_bench(argv[1:])
    elif len(argv) == 4 and argv[0] == "--soak":
        failures = check_soak(argv[1:])
    elif len(argv) == 4:
        failures = check_smoke(argv)
    else:
        print(__doc__, file=sys.stderr)
        return 2

    if failures:
        for f in failures:
            print(f"vitals-check FAILED: {f}", file=sys.stderr)
        return 1
    print("vitals-check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
