#!/usr/bin/env python3
"""CI vitals check over the repro smoke run's observability output.

Usage:
    vitals_check.py <metrics.json> <host-profile.txt> <baseline.json> <fault-profile>

Two gates, one per observability plane:

1. Sim plane (`metrics.json`): the key campaign counters must be nonzero —
   a campaign that ran but counted nothing means the harvest wiring broke.
   Under the `cellular` fault profile the chaos layer must also have
   injected faults.
2. Host plane (captured stderr profile): the campaign stage's events/sec
   throughput must not regress more than 30% below the low edge of the
   checked-in baseline band. The band's low edge is set conservatively for
   shared CI runners; the 30% grace absorbs runner-to-runner noise on top.

Stdlib only — the repo vendors all Rust deps and installs nothing in CI.
"""

import json
import re
import sys


def counter_total(metrics, name):
    return sum(c["value"] for c in metrics.get("counters", []) if c["name"] == name)


def parse_events_per_sec(profile_text):
    """Reads the `N events/s` rate from the host-plane profile, undoing the
    compact `912` / `4.1k` / `7.6M` rendering."""
    m = re.search(r"([0-9.]+)([kM]?) events/s", profile_text)
    if not m:
        return None
    return float(m.group(1)) * {"": 1.0, "k": 1e3, "M": 1e6}[m.group(2)]


def main():
    if len(sys.argv) != 5:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, profile_path, baseline_path, fault_profile = sys.argv[1:]
    with open(metrics_path) as f:
        metrics = json.load(f)
    with open(profile_path) as f:
        profile_text = f.read()
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    required = ["campaign.experiments", "campaign.lookups", "dns.cache.hits"]
    if fault_profile == "cellular":
        required.append("fault.injected")
    for name in required:
        total = counter_total(metrics, name)
        print(f"vitals: {name} = {total}")
        if total == 0:
            failures.append(f"counter {name} is zero")

    rate = parse_events_per_sec(profile_text)
    low = baseline["events_per_sec"]["low"]
    floor = low * (1.0 - baseline["regression_tolerance"])
    if rate is None:
        failures.append("no `events/s` rate found in the host-plane profile")
    else:
        print(f"vitals: campaign throughput = {rate:.0f} events/s "
              f"(baseline low {low:.0f}, failure floor {floor:.0f})")
        if rate < floor:
            failures.append(
                f"events/sec regressed: {rate:.0f} < {floor:.0f} "
                f"(>{baseline['regression_tolerance']:.0%} below baseline low)")

    if failures:
        for f in failures:
            print(f"vitals-check FAILED: {f}", file=sys.stderr)
        return 1
    print("vitals-check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
