//! Seed-robustness: the paper's findings must hold in *every* simulated
//! universe, not just the default seed. Runs two quick campaigns on
//! different seeds and checks that the headline shapes agree.

use behind_the_curtain::analysis::{
    cache_miss_fraction, public_equal_or_better, reachability, resolution_cdf,
};
use behind_the_curtain::figures::us_carriers;
use behind_the_curtain::measure::{Dataset, ResolverKind};
use behind_the_curtain::{Study, StudyConfig};

fn campaign(seed: u64) -> Dataset {
    let mut study = Study::new(StudyConfig::quick(seed));
    study.run()
}

#[test]
fn headline_findings_hold_across_seeds() {
    for seed in [101u64, 20141105] {
        let ds = campaign(seed);
        // Opaqueness: traceroute reaches nothing in any universe.
        assert!(
            reachability(&ds).iter().all(|r| r.traceroute == 0),
            "seed {seed}: traceroute penetrated a carrier"
        );
        // Indirection: externals never equal configured addresses.
        for r in &ds.records {
            if let Some(ext) = r.local_external() {
                assert_ne!(ext, r.configured_dns, "seed {seed}");
            }
        }
        // Public replicas equal-or-better a majority of the time.
        for c in 0..6 {
            let frac = public_equal_or_better(&ds, c, ResolverKind::Google);
            assert!(
                frac > 0.55,
                "seed {seed} carrier {c}: equal-or-better only {:.0}%",
                frac * 100.0
            );
        }
        // Cache misses in a plausible band.
        let miss = cache_miss_fraction(&ds, &us_carriers(&ds), 20.0);
        assert!(
            (0.03..=0.55).contains(&miss),
            "seed {seed}: miss fraction {miss:.2}"
        );
    }
}

#[test]
fn resolution_distributions_are_stable_across_seeds() {
    // Per-carrier curves are dominated by device placement at quick scale
    // (Sprint has a single device), so compare the pooled US population.
    let a = campaign(333);
    let b = campaign(777);
    let pooled = |ds: &Dataset| {
        let mut cdf = behind_the_curtain::analysis::Cdf::default();
        for &c in &us_carriers(ds) {
            cdf = cdf.merge(&resolution_cdf(ds, c, ResolverKind::Local));
        }
        cdf
    };
    let d = pooled(&a).ks_statistic(&pooled(&b));
    assert!(
        d < 0.35,
        "KS distance {d:.2} between seeds — mechanism unstable"
    );
}

#[test]
fn different_seeds_are_actually_different_universes() {
    let a = campaign(333);
    let b = campaign(777);
    let timings = |ds: &Dataset| {
        ds.records
            .iter()
            .flat_map(|r| r.lookups.iter().map(|l| l.elapsed_us))
            .collect::<Vec<_>>()
    };
    assert_ne!(timings(&a), timings(&b), "seeds produced identical runs");
}
