//! Integration tests for the RFC 7871 (EDNS Client-Subnet) extension — the
//! paper's §9 future-work fix, implemented end-to-end.

use behind_the_curtain::analysis::relative_replica_latency;
use behind_the_curtain::dnssim::client::resolve;
use behind_the_curtain::dnswire::name::DnsName;
use behind_the_curtain::dnswire::rdata::RecordType;
use behind_the_curtain::measure::{
    build_world, run_campaign, CampaignConfig, Dataset, ResolverKind, WorldConfig,
};

fn world_with(ecs: bool, seed: u64) -> behind_the_curtain::measure::World {
    let mut config = WorldConfig::quick(seed);
    config.ecs = ecs;
    build_world(config)
}

#[test]
fn ecs_resolution_returns_the_site_accurate_replicas() {
    let mut w = world_with(true, 4242);
    let (node, configured, site) = {
        let d = w.device(0);
        (d.node, d.configured_dns, d.site)
    };
    let carrier = w.device(0).carrier;
    let egress = w.carrier(carrier).sites[site].egress_addr;
    let domain = DnsName::parse("www.buzzfeed.com").unwrap();
    let lookup = resolve(
        &mut w.shards[0].net,
        node,
        configured,
        &domain,
        RecordType::A,
    );
    assert!(lookup.ok());
    // The answer must match what the CDN would pick for the client's egress
    // subnet — i.e. the mapping keyed on the *client*, not the resolver.
    let provider = w
        .backbone
        .catalog
        .iter()
        .find(|e| e.domain == domain)
        .expect("in catalog")
        .provider;
    let expected = w.backbone.cdns[provider].cdn.select(egress);
    let mut got = lookup.addrs();
    let mut want = expected.clone();
    got.sort();
    want.sort();
    assert_eq!(got, want, "ECS answer != client-subnet selection");
    assert!(w.backbone.cdns[provider].cdn.is_measured(egress));
}

#[test]
fn without_ecs_selection_keys_on_the_resolver() {
    let mut w = world_with(false, 4242);
    let (node, configured, site) = {
        let d = w.device(0);
        (d.node, d.configured_dns, d.site)
    };
    let carrier = w.device(0).carrier;
    let egress = w.carrier(carrier).sites[site].egress_addr;
    // Baseline world: the CDN has no knowledge of egress subnets.
    assert!(!w.backbone.cdns[0].cdn.is_measured(egress));
    let domain = DnsName::parse("www.buzzfeed.com").unwrap();
    let lookup = resolve(
        &mut w.shards[0].net,
        node,
        configured,
        &domain,
        RecordType::A,
    );
    assert!(lookup.ok());
}

#[test]
fn ecs_partitions_the_resolver_cache_by_subnet() {
    // Two devices on the same carrier behind different gateways must not
    // be served each other's cached CDN answers.
    let mut w = world_with(true, 77);
    let carrier = 3; // Verizon: single sticky external, shared by devices
    let device_idxs = w.devices_of(carrier);
    let mut answers = std::collections::HashMap::new();
    let domain = DnsName::parse("m.yelp.com").unwrap();
    for &di in device_idxs.iter().take(6) {
        let (shard, local) = w.locate_device(di);
        let (node, configured, site) = {
            let d = &w.shards[shard].devices[local];
            (d.node, d.configured_dns, d.site)
        };
        let lookup = resolve(
            &mut w.shards[shard].net,
            node,
            configured,
            &domain,
            RecordType::A,
        );
        assert!(lookup.ok());
        let mut addrs = lookup.addrs();
        addrs.sort();
        answers.insert(site, addrs);
    }
    // Devices at different sites get site-specific answers when the sites
    // are far enough apart (at least two distinct answers across sites).
    if answers.len() >= 3 {
        let distinct: std::collections::HashSet<_> = answers.values().collect();
        assert!(
            distinct.len() >= 2,
            "all sites got one cached answer: cache not ECS-partitioned"
        );
    }
}

#[test]
fn ecs_collapses_the_public_dns_replica_advantage() {
    let run = |ecs: bool| -> Dataset {
        let mut world = world_with(ecs, 31337);
        run_campaign(&mut world, &CampaignConfig::quick())
    };
    let base = run(false);
    let with_ecs = run(true);
    // Aggregate the strictly-better share across carriers.
    let strictly = |ds: &Dataset| -> f64 {
        let mut total = 0.0;
        for c in 0..ds.carrier_names.len() {
            total += relative_replica_latency(ds, c, ResolverKind::Google).fraction_leq(-1e-9);
        }
        total / ds.carrier_names.len() as f64
    };
    let b = strictly(&base);
    let e = strictly(&with_ecs);
    assert!(
        e < b * 0.7,
        "ECS did not reduce public DNS's strictly-better share: {b:.2} -> {e:.2}"
    );
}
