//! Cross-crate integration tests: one quick campaign shared across tests,
//! with assertions on the structural findings every figure depends on.

use behind_the_curtain::analysis::{
    cache_miss_fraction, egress_points, ldns_pairs, public_equal_or_better, reachability,
    resolution_cdf,
};
use behind_the_curtain::figures;
use behind_the_curtain::measure::{Dataset, ResolverKind};
use behind_the_curtain::{Study, StudyConfig};
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut study = Study::new(StudyConfig::quick(20141105));
        study.run()
    })
}

#[test]
fn campaign_covers_all_carriers_and_devices() {
    let ds = dataset();
    assert_eq!(ds.carrier_names.len(), 6);
    for c in 0..6 {
        assert!(ds.of_carrier(c).count() > 0, "carrier {c} has no records");
    }
    // Every record carries complete lookup tables.
    for r in &ds.records {
        assert_eq!(r.lookups.len(), 9 * 3 * 2);
        assert_eq!(r.identities.len(), 3);
    }
}

#[test]
fn indirect_resolution_everywhere() {
    // §4.1: every carrier uses indirect resolution — the external resolver
    // the ADNS sees is never the configured client-facing address.
    let ds = dataset();
    for r in &ds.records {
        if let Some(ext) = r.local_external() {
            assert_ne!(ext, r.configured_dns, "direct resolution observed");
        }
    }
}

#[test]
fn ldns_pair_structure_matches_profiles() {
    let ds = dataset();
    // Verizon is fully sticky.
    let vz = ds
        .carrier_names
        .iter()
        .position(|n| n == "Verizon")
        .unwrap();
    let s = ldns_pairs(ds, vz);
    assert!(
        (s.consistency_pct - 100.0).abs() < 1e-9,
        "Verizon consistency {}",
        s.consistency_pct
    );
    assert_eq!(s.pairs, s.client_facing, "Verizon: one external per client");
    // T-Mobile load-balances: consistency well below Verizon's.
    let tm = ds
        .carrier_names
        .iter()
        .position(|n| n == "T-Mobile")
        .unwrap();
    let s = ldns_pairs(ds, tm);
    assert!(s.consistency_pct < 70.0, "T-Mobile {}", s.consistency_pct);
    assert!(s.external > s.client_facing);
}

#[test]
fn sk_carriers_confine_externals_to_few_slash24s() {
    let ds = dataset();
    use behind_the_curtain::netsim::addr::Prefix;
    for name in ["SK Telecom", "LG U+"] {
        let c = ds.carrier_names.iter().position(|n| n == name).unwrap();
        let mut prefixes = std::collections::HashSet::new();
        for r in ds.of_carrier(c) {
            if let Some(ext) = r.local_external() {
                prefixes.insert(Prefix::slash24_of(ext));
            }
        }
        assert!(
            prefixes.len() <= 2,
            "{name}: externals span {} /24s",
            prefixes.len()
        );
    }
}

#[test]
fn cellular_opaqueness_table4() {
    let ds = dataset();
    let rows = reachability(ds);
    // Traceroute reaches nothing, anywhere (Table 4's right column).
    assert!(rows.iter().all(|r| r.traceroute == 0));
    // Verizon & T-Mobile: majority ping-reachable; Sprint & SK: zero.
    let get = |name: &str| rows.iter().find(|r| r.carrier == name).unwrap();
    assert!(get("Verizon").ping * 2 > get("Verizon").total);
    assert!(get("T-Mobile").ping * 2 > get("T-Mobile").total);
    assert_eq!(get("Sprint").ping, 0);
    assert_eq!(get("SK Telecom").ping, 0);
    assert_eq!(get("LG U+").ping, 0);
    let att = get("AT&T");
    assert!(
        att.ping > 0 && att.ping * 4 < att.total,
        "AT&T small fraction"
    );
}

#[test]
fn local_dns_resolves_faster_than_public_at_median() {
    // §6.2: the locally configured resolver provides faster resolutions.
    let ds = dataset();
    let mut local_wins = 0;
    for c in 0..6 {
        let local = resolution_cdf(ds, c, ResolverKind::Local).median().unwrap();
        let google = resolution_cdf(ds, c, ResolverKind::Google)
            .median()
            .unwrap();
        if local < google {
            local_wins += 1;
        }
    }
    assert!(
        local_wins >= 4,
        "local faster in only {local_wins}/6 carriers"
    );
}

#[test]
fn public_replicas_equal_or_better_a_majority_of_the_time() {
    // The abstract: public DNS renders equal-or-better replica performance
    // over 75% of the time.
    let ds = dataset();
    for c in 0..6 {
        let frac = public_equal_or_better(ds, c, ResolverKind::Google);
        assert!(
            frac > 0.6,
            "{}: public equal-or-better only {:.0}%",
            ds.carrier_names[c],
            frac * 100.0
        );
    }
}

#[test]
fn cache_misses_in_the_expected_band() {
    // Fig. 7: ~20% of first lookups are cache misses.
    let ds = dataset();
    let us: Vec<usize> = figures::us_carriers(ds);
    let miss = cache_miss_fraction(ds, &us, 20.0);
    assert!(
        (0.05..=0.5).contains(&miss),
        "miss fraction {:.2} outside band",
        miss
    );
}

#[test]
fn egress_points_are_plentiful_under_lte() {
    // §5.2: many egress points per carrier (not the 4–6 of the 3G era).
    let ds = dataset();
    let mut nonzero = 0;
    for c in 0..6 {
        if !egress_points(ds, c).is_empty() {
            nonzero += 1;
        }
    }
    assert!(nonzero >= 5, "egress detected in only {nonzero}/6 carriers");
}

#[test]
fn resolver_churn_happens_even_without_movement() {
    // Fig. 9: stationary devices still see multiple external resolvers.
    let ds = dataset();
    use behind_the_curtain::analysis::{busiest_static_device, static_location_enumeration};
    let mut churned = 0;
    for c in 0..6 {
        let Some(dev) = busiest_static_device(ds, c) else {
            continue;
        };
        let points = static_location_enumeration(ds, dev, 1.0);
        let ips = points.iter().map(|p| p.ip_index).max().unwrap_or(0);
        if ips > 1 {
            churned += 1;
        }
    }
    assert!(churned >= 3, "static churn in only {churned}/6 carriers");
}

#[test]
fn all_artifacts_render_and_export() {
    let ds = dataset();
    let artifacts = figures::all_artifacts(ds);
    assert_eq!(artifacts.len(), 21);
    for a in &artifacts {
        assert!(!a.text.is_empty(), "{}", a.id);
        if let Some(csv) = &a.csv {
            assert!(csv.lines().count() > 1, "{} csv empty", a.id);
        }
    }
    // Raw CSV exports parse as consistent tables.
    for csv in [ds.lookups_csv(), ds.replicas_csv(), ds.identities_csv()] {
        let mut lines = csv.lines();
        let cols = lines.next().unwrap().split(',').count();
        for line in lines.take(100) {
            assert_eq!(line.split(',').count(), cols);
        }
    }
}

#[test]
fn same_seed_same_dataset() {
    let run = || {
        let mut study = Study::new(StudyConfig::quick(555));
        let ds = study.run();
        (
            ds.records.len(),
            ds.resolution_count(),
            ds.records
                .iter()
                .flat_map(|r| r.lookups.iter().map(|l| l.elapsed_us))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
