//! Determinism regression tests: the campaign's exported CSV bytes must be
//! identical for every thread count (sharded execution merges in canonical
//! order), and must actually depend on the seed.

use behind_the_curtain::measure::{
    build_world, run_campaign_with, CampaignConfig, Dataset, Parallelism,
};
use behind_the_curtain::measure::{ExperimentSpec, WorldConfig};
use behind_the_curtain::{Study, StudyConfig};

fn campaign(seed: u64, par: Parallelism) -> Dataset {
    let mut world = build_world(WorldConfig::quick(seed));
    let cfg = CampaignConfig {
        days: 2,
        experiments_per_day: 3,
        spec: ExperimentSpec::light(),
        external_probe_day: Some(1),
    };
    run_campaign_with(&mut world, &cfg, par)
}

/// All three exported tables, concatenated — the full byte-level surface a
/// downstream consumer sees.
fn csv_bytes(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(ds.lookups_csv().as_bytes());
    out.extend_from_slice(ds.replicas_csv().as_bytes());
    out.extend_from_slice(ds.identities_csv().as_bytes());
    out
}

#[test]
fn six_shards_export_byte_identical_csvs_to_single_thread() {
    let serial = campaign(20141105, Parallelism::Threads(1));
    let parallel = campaign(20141105, Parallelism::Threads(6));
    assert_eq!(
        csv_bytes(&serial),
        csv_bytes(&parallel),
        "thread count changed exported bytes"
    );
    // Intermediate thread counts chunk shards unevenly; still identical.
    let chunked = campaign(20141105, Parallelism::Threads(4));
    assert_eq!(csv_bytes(&serial), csv_bytes(&chunked));
    // And the structured dataset itself matches, not just its projection.
    assert_eq!(serial, parallel);
}

#[test]
fn study_runs_are_thread_count_invariant() {
    // The issue's exact scenario: the same quick study, once single-threaded
    // and once with six shards, exports identical CSV bytes.
    let run = |threads: usize| {
        let mut config = StudyConfig::quick(20141105);
        config.parallelism = Parallelism::Threads(threads);
        let ds = Study::new(config).run();
        csv_bytes(&ds)
    };
    assert_eq!(run(1), run(6), "Study output depends on thread count");
}

#[test]
fn auto_parallelism_matches_explicit_threads() {
    let auto = campaign(7, Parallelism::Auto);
    let one = campaign(7, Parallelism::Threads(1));
    assert_eq!(csv_bytes(&auto), csv_bytes(&one));
}

#[test]
fn different_seeds_export_different_csvs() {
    let a = campaign(20141105, Parallelism::Threads(6));
    let b = campaign(20141106, Parallelism::Threads(6));
    assert_ne!(
        csv_bytes(&a),
        csv_bytes(&b),
        "seed does not influence exported bytes"
    );
}
