//! Determinism regression tests: the campaign's exported CSV bytes must be
//! identical for every thread count (sharded execution merges in canonical
//! order), and must actually depend on the seed. The same holds with the
//! chaos layer enabled: a fault profile adds failures, not nondeterminism.
//! The sim-plane metrics registry is part of the same contract: its JSON
//! export is sha256-checked across thread counts and fault profiles.

use behind_the_curtain::measure::{
    build_world, run_campaign_observed, run_campaign_with, CampaignConfig, CampaignRun, Dataset,
    FaultProfile, Outcome, Parallelism, QueueKind,
};
use behind_the_curtain::measure::{ExperimentSpec, WorldConfig};
use behind_the_curtain::obs::sha256_hex;
use behind_the_curtain::{Study, StudyConfig};

fn quick_campaign_config() -> CampaignConfig {
    CampaignConfig {
        days: 2,
        experiments_per_day: 3,
        spec: ExperimentSpec::light(),
        external_probe_day: Some(1),
    }
}

fn campaign_with_profile(seed: u64, par: Parallelism, profile: FaultProfile) -> Dataset {
    let mut world = build_world(WorldConfig {
        fault_profile: profile,
        ..WorldConfig::quick(seed)
    });
    run_campaign_with(&mut world, &quick_campaign_config(), par)
}

fn observed_with_profile(seed: u64, par: Parallelism, profile: FaultProfile) -> CampaignRun {
    let mut world = build_world(WorldConfig {
        fault_profile: profile,
        ..WorldConfig::quick(seed)
    });
    run_campaign_observed(&mut world, &quick_campaign_config(), par, None)
}

/// The sha256 of the bytes `repro` writes to `results/metrics.json`.
fn metrics_sha(seed: u64, par: Parallelism, profile: FaultProfile) -> String {
    sha256_hex(
        observed_with_profile(seed, par, profile)
            .metrics
            .to_json()
            .as_bytes(),
    )
}

fn campaign(seed: u64, par: Parallelism) -> Dataset {
    campaign_with_profile(seed, par, FaultProfile::None)
}

/// All four exported tables, concatenated — the full byte-level surface a
/// downstream consumer sees.
fn csv_bytes(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(ds.lookups_csv().as_bytes());
    out.extend_from_slice(ds.replicas_csv().as_bytes());
    out.extend_from_slice(ds.identities_csv().as_bytes());
    out.extend_from_slice(ds.outcomes_csv().as_bytes());
    out
}

#[test]
fn six_shards_export_byte_identical_csvs_to_single_thread() {
    let serial = campaign(20141105, Parallelism::Threads(1));
    let parallel = campaign(20141105, Parallelism::Threads(6));
    assert_eq!(
        csv_bytes(&serial),
        csv_bytes(&parallel),
        "thread count changed exported bytes"
    );
    // Intermediate thread counts chunk shards unevenly; still identical.
    let chunked = campaign(20141105, Parallelism::Threads(4));
    assert_eq!(csv_bytes(&serial), csv_bytes(&chunked));
    // And the structured dataset itself matches, not just its projection.
    assert_eq!(serial, parallel);
}

#[test]
fn study_runs_are_thread_count_invariant() {
    // The issue's exact scenario: the same quick study, once single-threaded
    // and once with six shards, exports identical CSV bytes.
    let run = |threads: usize| {
        let mut config = StudyConfig::quick(20141105);
        config.parallelism = Parallelism::Threads(threads);
        let ds = Study::new(config).run();
        csv_bytes(&ds)
    };
    assert_eq!(run(1), run(6), "Study output depends on thread count");
}

#[test]
fn auto_parallelism_matches_explicit_threads() {
    let auto = campaign(7, Parallelism::Auto);
    let one = campaign(7, Parallelism::Threads(1));
    assert_eq!(csv_bytes(&auto), csv_bytes(&one));
}

#[test]
fn different_seeds_export_different_csvs() {
    let a = campaign(20141105, Parallelism::Threads(6));
    let b = campaign(20141106, Parallelism::Threads(6));
    assert_ne!(
        csv_bytes(&a),
        csv_bytes(&b),
        "seed does not influence exported bytes"
    );
}

#[test]
fn cellular_fault_profile_is_thread_count_invariant() {
    // Chaos enabled: the fault plan draws from its own per-shard seed lane,
    // so 1, 4, and 6 threads must still export byte-identical CSVs.
    let one = campaign_with_profile(20141105, Parallelism::Threads(1), FaultProfile::Cellular);
    let four = campaign_with_profile(20141105, Parallelism::Threads(4), FaultProfile::Cellular);
    let six = campaign_with_profile(20141105, Parallelism::Threads(6), FaultProfile::Cellular);
    assert_eq!(
        csv_bytes(&one),
        csv_bytes(&four),
        "fault profile broke 4-thread determinism"
    );
    assert_eq!(
        csv_bytes(&one),
        csv_bytes(&six),
        "fault profile broke 6-thread determinism"
    );
    assert_eq!(one, six);
}

#[test]
fn metrics_json_is_byte_identical_across_thread_counts() {
    // metrics.json is part of the byte-identical-replay contract, under
    // both the clean and the chaotic profile: per-shard registries merge
    // in canonical shard order regardless of how shards were chunked
    // across worker threads.
    for profile in [FaultProfile::None, FaultProfile::Cellular] {
        let one = metrics_sha(20141105, Parallelism::Threads(1), profile);
        let four = metrics_sha(20141105, Parallelism::Threads(4), profile);
        let six = metrics_sha(20141105, Parallelism::Threads(6), profile);
        assert_eq!(one, four, "{profile:?}: 4 threads changed metrics.json");
        assert_eq!(one, six, "{profile:?}: 6 threads changed metrics.json");
    }
}

#[test]
fn metrics_json_depends_on_seed_and_fault_profile() {
    // The byte-identity above must not be vacuous: different seeds and
    // different fault profiles have to produce different registries.
    let base = metrics_sha(20141105, Parallelism::Threads(4), FaultProfile::None);
    let seeded = metrics_sha(20141106, Parallelism::Threads(4), FaultProfile::None);
    let chaotic = metrics_sha(20141105, Parallelism::Threads(4), FaultProfile::Cellular);
    assert_ne!(base, seeded, "seed does not reach the metrics registry");
    assert_ne!(base, chaotic, "fault profile does not reach the registry");
}

#[test]
fn registry_vitals_match_the_dataset() {
    // Spot-check the harvest against ground truth: campaign counters must
    // agree with the records they were read from, and the substrate
    // families (engine, faults, caches) must all be live.
    let run = observed_with_profile(20141105, Parallelism::Threads(6), FaultProfile::Cellular);
    let m = &run.metrics;
    let ds = &run.dataset;
    assert_eq!(
        m.counter_total("campaign.experiments"),
        ds.records.len() as u64
    );
    let lookups: u64 = ds.records.iter().map(|r| r.lookups.len() as u64).sum();
    assert_eq!(m.counter_total("campaign.lookups"), lookups);
    assert_eq!(m.counter_total("dns.lookup.outcomes"), lookups);
    assert!(m.counter_total("net.events") > 0, "engine counters missing");
    assert!(m.counter_total("fault.injected") > 0, "chaos layer unread");
    assert!(
        m.counter_total("dns.cache.misses") > 0,
        "cache stats unread"
    );
    assert!(
        m.gauge_peak("net.queue_depth") > 0,
        "queue high-water unset"
    );
}

#[test]
fn fig7_cache_miss_rate_from_registry_stays_in_band() {
    // Fig 7's subject — how often the carrier-side caches actually miss —
    // read directly from the registry's cache counters instead of being
    // inferred from first-vs-second lookup timings. Pinned against the
    // quick-study value so cache regressions surface here, with a band
    // wide enough to absorb intentional workload tuning.
    let mut config = StudyConfig::quick(20141105);
    config.parallelism = Parallelism::Threads(6);
    let run = Study::new(config).run_observed(None);
    let m = &run.metrics;
    let hits = m.counter_total("dns.cache.hits") + m.counter_total("dns.cache.ambient_hits");
    let misses = m.counter_total("dns.cache.misses");
    assert!(hits + misses > 0, "no cache traffic harvested");
    let frac = misses as f64 / (hits + misses) as f64;
    // Quick study at seed 20141105 measures 0.427; the registry rate runs
    // above Fig 7's timing-inferred ~20-30% because it also counts probe
    // and upstream traffic that never hits a warm entry.
    assert!(
        (0.32..=0.52).contains(&frac),
        "registry cache-miss fraction {frac:.3} left the pinned band 0.32..=0.52 \
         (quick-study baseline 0.427; paper Fig 7 first-lookup misses ~20%)"
    );
}

#[test]
fn cellular_fault_profile_produces_a_failure_taxonomy() {
    let ds = campaign_with_profile(20141105, Parallelism::Threads(6), FaultProfile::Cellular);
    // Count lookups per outcome across the whole campaign.
    let mut counts = std::collections::BTreeMap::new();
    for r in &ds.records {
        for l in &r.lookups {
            *counts.entry(l.outcome).or_insert(0u64) += 1;
        }
    }
    let distinct_failures = counts.keys().filter(|o| **o != Outcome::Ok).count();
    assert!(
        distinct_failures >= 3,
        "expected >=3 distinct non-ok outcomes under cellular chaos, got {counts:?}"
    );
    // The aggregate CSV carries the same taxonomy.
    let csv = ds.outcomes_csv();
    for (outcome, n) in &counts {
        assert!(*n > 0);
        assert!(
            csv.contains(outcome.label()),
            "outcomes.csv missing {}",
            outcome.label()
        );
    }
}

fn campaign_run_with_queue(
    seed: u64,
    par: Parallelism,
    profile: FaultProfile,
    queue: QueueKind,
) -> CampaignRun {
    let mut world = build_world(WorldConfig {
        fault_profile: profile,
        queue,
        ..WorldConfig::quick(seed)
    });
    run_campaign_observed(&mut world, &quick_campaign_config(), par, None)
}

#[test]
fn heap_and_wheel_queues_export_byte_identical_outputs() {
    // The tentpole contract: swapping the engine's event queue between the
    // reference binary heap and the timing wheel must not move a single
    // byte of any exported table or of metrics.json — under every thread
    // count and with the chaos layer both off and on. (The default-config
    // path runs the wheel; the thread-sweep tests above already pin wheel
    // runs against each other, so one wheel reference per profile here
    // closes the heap side transitively.)
    for profile in [FaultProfile::None, FaultProfile::Cellular] {
        let wheel =
            campaign_run_with_queue(20141105, Parallelism::Threads(1), profile, QueueKind::Wheel);
        let wheel_csv = csv_bytes(&wheel.dataset);
        let wheel_sha = sha256_hex(wheel.metrics.to_json().as_bytes());
        for threads in [1, 4, 6] {
            let heap = campaign_run_with_queue(
                20141105,
                Parallelism::Threads(threads),
                profile,
                QueueKind::Heap,
            );
            assert_eq!(
                wheel_csv,
                csv_bytes(&heap.dataset),
                "{profile:?}/{threads} threads: heap and wheel queues diverged on CSV bytes"
            );
            assert_eq!(
                wheel_sha,
                sha256_hex(heap.metrics.to_json().as_bytes()),
                "{profile:?}/{threads} threads: heap and wheel queues diverged on metrics.json"
            );
        }
    }
}

#[test]
fn completed_flow_backlog_stays_bounded_over_the_campaign() {
    // The engine's completed-outcome map once grew without bound: every
    // fire-and-forget probe parked an outcome nobody would ever poll. The
    // campaign driver now reaps stale outcomes each device slot; the
    // sampled high-water mark must stay at a per-slot scale, not scale
    // with campaign length.
    let run = observed_with_profile(20141105, Parallelism::Threads(6), FaultProfile::Cellular);
    // The gauge must be present (instrumentation alive) …
    assert!(
        run.metrics.to_json().contains("campaign.completed_backlog"),
        "backlog gauge never exported — drain instrumentation dead"
    );
    // … and its high-water mark must stay at per-slot scale: the campaign
    // drivers poll every flow they issue, so anything campaign-scale here
    // means outcomes are leaking past the per-slot reap again.
    let peak = run.metrics.gauge_peak("campaign.completed_backlog");
    assert!(
        peak <= 16,
        "completed-flow backlog high water {peak} exceeds per-slot scale; \
         the per-slot drain is not running"
    );
    // Timeout bookkeeping from the same run: most flows complete early and
    // cancel their timeout; fired timeouts are the exception.
    let cancelled = run.metrics.counter_total("net.flow_timeouts_cancelled");
    let fired = run.metrics.counter_total("net.flow_timeouts");
    assert!(cancelled > 0, "no timeouts were ever cancelled");
    assert!(
        cancelled > fired,
        "cancelled ({cancelled}) should dominate fired ({fired}) timeouts"
    );
}

#[test]
fn fault_free_outputs_do_not_depend_on_the_chaos_layer_existing() {
    // A world built with FaultProfile::None must export exactly the same
    // bytes as one built before the fault layer existed; its plan makes
    // zero RNG draws. (Guarded here by the explicit-profile constructor
    // matching the default-config path.)
    let default_cfg = campaign(20141105, Parallelism::Threads(2));
    let explicit_none =
        campaign_with_profile(20141105, Parallelism::Threads(2), FaultProfile::None);
    assert_eq!(csv_bytes(&default_cfg), csv_bytes(&explicit_none));
    // And the chaos layer changes them when switched on.
    let cellular = campaign_with_profile(20141105, Parallelism::Threads(2), FaultProfile::Cellular);
    assert_ne!(csv_bytes(&default_cfg), csv_bytes(&cellular));
}
