//! Integration test for the 3G-era mode: the §2 historical baseline of
//! Xu et al., rebuilt and compared against the LTE world.

use behind_the_curtain::analysis::{egress_points, resolution_cdf, Cdf};
use behind_the_curtain::cellsim::RadioTech;
use behind_the_curtain::measure::{
    build_world, run_campaign, CampaignConfig, Dataset, ExperimentSpec, ResolverKind, WorldConfig,
};

fn campaign(three_g: bool) -> Dataset {
    let mut config = WorldConfig::quick(1111);
    config.three_g_era = three_g;
    config.gateway_scale = 1.0; // era comparison needs real gateway counts
    let mut world = build_world(config);
    run_campaign(
        &mut world,
        &CampaignConfig {
            days: 3,
            experiments_per_day: 2,
            spec: ExperimentSpec::light(),
            external_probe_day: None,
        },
    )
}

#[test]
fn three_g_era_has_few_egress_points_and_no_lte() {
    let g3 = campaign(true);
    for c in 0..6 {
        let egress = egress_points(&g3, c).len();
        assert!(
            egress <= 6,
            "{}: {egress} egress points in the 3G era (Xu et al. saw 4-6)",
            g3.carrier_names[c]
        );
    }
    assert!(
        !g3.records.iter().any(|r| r.radio == RadioTech::Lte),
        "LTE radio observed in the 3G era"
    );
}

#[test]
fn lte_era_multiplies_egress_and_halves_resolution_time() {
    let g3 = campaign(true);
    let lte = campaign(false);
    let total = |ds: &Dataset| -> usize { (0..6).map(|c| egress_points(ds, c).len()).sum() };
    let (e3, e4) = (total(&g3), total(&lte));
    assert!(
        e4 >= e3 * 2,
        "LTE egress {e4} not a multiple of 3G egress {e3}"
    );
    // Pooled local resolution medians: 3G is radio-dominated and slower.
    let pooled = |ds: &Dataset| {
        let mut cdf = Cdf::default();
        for c in 0..6 {
            cdf = cdf.merge(&resolution_cdf(ds, c, ResolverKind::Local));
        }
        cdf.median().unwrap()
    };
    let (m3, m4) = (pooled(&g3), pooled(&lte));
    assert!(
        m3 > m4 * 1.4,
        "3G median {m3:.0}ms not clearly slower than LTE {m4:.0}ms"
    );
}
