//! Workspace-clean gate: the determinism-and-safety lint pass must report
//! zero findings on the tree. This runs inside plain `cargo test -q`, so a
//! reintroduced hash-iteration, wall-clock, ambient-RNG, or unmarked-panic
//! hazard fails CI even before the dedicated detlint step.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    // The root package's manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(
        root.join("crates/detlint").is_dir(),
        "workspace root discovery broke: {}",
        root.display()
    );
    let findings = detlint::scan_workspace(root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "detlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The flow rules only bite if their inputs stay wired: the engine's
/// dispatch/parse hot paths must keep their `// detlint: hot` annotations
/// (D9/D10 roots), and the D12 cross-check must find both declaration
/// sources. Deleting any of these would silently disarm the lint while
/// `workspace_is_detlint_clean` kept passing.
#[test]
fn flow_rule_inputs_stay_wired() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for file in [
        "crates/netsim/src/engine.rs",
        "crates/netsim/src/queue.rs",
        "crates/dnswire/src/nameref.rs",
        "crates/dnswire/src/message.rs",
    ] {
        let text = std::fs::read_to_string(root.join(file)).expect(file);
        assert!(
            text.contains("// detlint: hot"),
            "{file} lost its hot-path annotations; D9/D10 have no roots there"
        );
    }
    let decls = detlint::load_metric_decls(root);
    assert!(
        decls.names.keys().any(|n| n == "net.events"),
        "KNOWN_METRICS in scripts/vitals_check.py no longer parses"
    );
    assert!(
        decls.names.keys().any(|n| n == "campaign.experiments"),
        "ci/vitals-baseline.json counters no longer parse"
    );
}

#[test]
fn workspace_root_discovery_walks_ancestors() {
    let nested = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/detlint/src");
    let found = detlint::find_workspace_root(&nested).expect("root above crates/detlint/src");
    assert_eq!(found, Path::new(env!("CARGO_MANIFEST_DIR")));
}
