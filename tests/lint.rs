//! Workspace-clean gate: the determinism-and-safety lint pass must report
//! zero findings on the tree. This runs inside plain `cargo test -q`, so a
//! reintroduced hash-iteration, wall-clock, ambient-RNG, or unmarked-panic
//! hazard fails CI even before the dedicated detlint step.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    // The root package's manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(
        root.join("crates/detlint").is_dir(),
        "workspace root discovery broke: {}",
        root.display()
    );
    let findings = detlint::scan_workspace(root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "detlint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_root_discovery_walks_ancestors() {
    let nested = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/detlint/src");
    let found = detlint::find_workspace_root(&nested).expect("root above crates/detlint/src");
    assert_eq!(found, Path::new(env!("CARGO_MANIFEST_DIR")));
}
