//! Cross-substrate integration tests exercising the world directly (no
//! campaign): end-to-end resolution through carrier tiers, middlebox
//! semantics across the assembled topology, anycast behaviour, and CDN
//! mapping properties.
//!
//! Device-level traffic runs on the device's own carrier shard (device 0
//! lives on shard 0); backbone knowledge tables are read through
//! `world.backbone`.

use behind_the_curtain::dnssim::client::{resolve, whoami};
use behind_the_curtain::dnswire::name::DnsName;
use behind_the_curtain::dnswire::rdata::RecordType;
use behind_the_curtain::measure::{build_world, World, WorldConfig, GOOGLE_VIP, OPENDNS_VIP};
use behind_the_curtain::netsim::addr::Prefix;

fn world() -> World {
    build_world(WorldConfig::quick(808))
}

fn n(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

#[test]
fn device_resolves_every_catalog_domain_via_all_resolvers() {
    let mut w = world();
    let (node, configured) = {
        let d = w.device(0);
        (d.node, d.configured_dns)
    };
    let domains: Vec<DnsName> = w
        .backbone
        .catalog
        .iter()
        .map(|e| e.domain.clone())
        .collect();
    for resolver in [configured, GOOGLE_VIP, OPENDNS_VIP] {
        for domain in &domains {
            let lookup = resolve(&mut w.shards[0].net, node, resolver, domain, RecordType::A);
            assert!(
                lookup.ok() && !lookup.addrs().is_empty(),
                "{domain} via {resolver} failed: {lookup:?}"
            );
        }
    }
}

#[test]
fn cdn_answers_carry_cname_and_short_ttls() {
    let mut w = world();
    let (node, configured) = {
        let d = w.device(0);
        (d.node, d.configured_dns)
    };
    let lookup = resolve(
        &mut w.shards[0].net,
        node,
        configured,
        &n("www.buzzfeed.com"),
        RecordType::A,
    );
    let resp = lookup.response.expect("answered");
    let canon = resp.canonical_name(&n("www.buzzfeed.com"));
    assert!(
        canon.to_string().contains("edge.cdn-"),
        "canonical {canon} not in a CDN edge zone"
    );
    // A records carry CDN-short TTLs (<= 60s).
    for rr in resp
        .answers
        .iter()
        .filter(|rr| rr.record_type() == RecordType::A)
    {
        assert!(rr.ttl <= 60, "A ttl {} too long", rr.ttl);
    }
}

#[test]
fn replicas_returned_differ_between_resolver_slash24s() {
    // The /24-keyed mapping: two resolvers in different /24s usually get
    // different replica sets for the same domain.
    let w = world();
    let cdn = &w.backbone.cdns[0].cdn;
    let ext: Vec<_> = w
        .carrier(0)
        .external_resolvers
        .iter()
        .map(|&(_, a)| a)
        .collect();
    let mut distinct_sets = std::collections::HashSet::new();
    for &addr in &ext {
        distinct_sets.insert(cdn.select(addr));
    }
    let prefixes: std::collections::HashSet<_> =
        ext.iter().map(|&a| Prefix::slash24_of(a)).collect();
    assert!(
        distinct_sets.len() > 1,
        "all resolvers map to one replica set"
    );
    assert!(distinct_sets.len() <= prefixes.len(), "more sets than /24s");
}

#[test]
fn public_dns_sites_are_measured_carrier_blocks_are_not() {
    let w = world();
    let cdn = &w.backbone.cdns[0].cdn;
    for site in &w.backbone.public_dns[0].sites {
        assert!(cdn.is_measured(site.egress_addrs[0]));
    }
    for &(_, addr) in &w.carrier(0).external_resolvers {
        assert!(!cdn.is_measured(addr), "{addr} should be unmeasurable");
    }
}

#[test]
fn whoami_via_public_dns_reveals_site_egress_not_vip() {
    let mut w = world();
    let node = w.device(0).node;
    let probe_zone = w.backbone.probe_zone.clone();
    let (lookup, ext) = whoami(&mut w.shards[0].net, node, GOOGLE_VIP, &probe_zone);
    assert!(lookup.ok());
    let ext = ext.expect("external discovered");
    assert_ne!(ext, GOOGLE_VIP);
    // The discovered address belongs to one of the Google site /24s.
    assert!(
        w.backbone.public_dns[0]
            .sites
            .iter()
            .any(|s| s.prefix.contains(ext)),
        "{ext} not in any Google site prefix"
    );
}

#[test]
fn devices_behind_nat_expose_only_gateway_addresses() {
    let mut w = world();
    let device_ip = w.device(0).ip;
    let node = w.device(0).node;
    // The device's private address must never be reachable from outside.
    let uni = w.backbone.university;
    let uni_addr = w.shards[0].net.topo().node(uni).primary_addr();
    let report = w.shards[0].net.ping_train(uni, device_ip, 2);
    assert!(!report.reachable(), "device pingable from the internet");
    // But the device can reach out, via its gateway's public address.
    let out = w.shards[0].net.ping_train(node, uni_addr, 2);
    assert!(out.reachable(), "device cannot reach the internet");
}

#[test]
fn device_traceroute_shows_egress_then_backbone_and_hides_the_core() {
    let mut w = world();
    let node = w.device(0).node;
    let carrier = w.device(0).carrier;
    let replica = w.backbone.cdns[0].replicas[0].1;
    let trace = w.shards[0].net.traceroute(node, replica, 20);
    assert!(trace.reached, "replica unreachable: {trace:?}");
    let hops = trace.responding_hops();
    // First responding hop is the carrier egress (the MPLS core before it
    // is silent), then backbone/replica addresses.
    let public = w.carrier(carrier).public_prefix;
    assert!(
        public.contains(hops[0]),
        "first hop {} not a carrier address",
        hops[0]
    );
    assert!(
        hops.iter().skip(1).all(|h| !public.contains(*h)),
        "multiple carrier hops visible despite MPLS: {hops:?}"
    );
}

#[test]
fn google_anycast_latency_tracks_nearest_site() {
    let mut w = world();
    // Per-device VIP ping should be close to the best unicast site ping.
    let node = w.device(0).node;
    let vip = w.shards[0].net.ping_train(node, GOOGLE_VIP, 3);
    let vip_rtt = vip.min_rtt().expect("vip answers").as_millis_f64();
    let best_site = w.backbone.public_dns[0]
        .sites
        .iter()
        .map(|s| s.egress_addrs[0])
        .collect::<Vec<_>>();
    let mut best = f64::MAX;
    for addr in best_site {
        if let Some(r) = w.shards[0].net.ping_train(node, addr, 1).min_rtt() {
            best = best.min(r.as_millis_f64());
        }
    }
    assert!(
        vip_rtt < best * 1.8 + 10.0,
        "vip {vip_rtt}ms vs best site {best}ms"
    );
}

#[test]
fn world_scales_with_config() {
    let small = build_world(WorldConfig::quick(1));
    let full = build_world(WorldConfig {
        seed: 1,
        ..WorldConfig::default()
    });
    assert!(full.device_count() > small.device_count() * 4);
    assert!(
        full.node_count() > small.node_count(),
        "full world not larger"
    );
    assert_eq!(full.device_count(), 158);
}
