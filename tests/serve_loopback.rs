//! Loopback integration of the serving plane: a real [`DnsServer`] bound
//! on `127.0.0.1:0`, driven by the deterministic load generator, with
//! every wire answer replayed into a ground-truth [`ServeCore`] built from
//! the identical world config and compared byte-for-byte — over UDP, over
//! TCP, through the forced-TC → TCP retry path, and under wire chaos
//! (malformed datagrams, duplicate floods, hostile TCP connections).

use dnssim::{frame, require_frame};
use dnswire::builder::QueryBuilder;
use dnswire::message::{Message, MessageView, Opcode, Rcode};
use dnswire::rdata::RecordType;
use loadgen::{build_script, run, ChaosProfile, DriverConfig, MixConfig};
use serve::{DnsServer, FaultProfile, ServeCore, Transport, WorldConfig};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, TcpStream, UdpSocket};
use std::time::Duration;

fn start(config: WorldConfig) -> DnsServer {
    DnsServer::start(config, Ipv4Addr::LOCALHOST).expect("bind loopback")
}

fn query_bytes(id: u16, name: &str) -> Vec<u8> {
    let mut q = QueryBuilder::new(id, name, RecordType::A)
        .recursion_desired(true)
        .build()
        .unwrap();
    q.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
    q.encode().unwrap()
}

#[test]
fn udp_wire_answers_match_the_batch_resolver() {
    let server = start(WorldConfig::quick(11));
    let eps = server.endpoints().clone();
    // Mixed traffic: catalog domains plus 10% cache-busting probe nonces.
    let script = build_script(
        &eps,
        &MixConfig {
            queries: 600,
            miss_per_mille: 100,
        },
    );
    let stats = run(
        &eps,
        &script,
        &DriverConfig {
            qps: None,
            verify: true,
            chaos: ChaosProfile::Off,
        },
    )
    .expect("wire run");
    let report = server.stop();

    assert_eq!(stats.answered, 600, "every scripted query must answer");
    assert_eq!(
        stats.mismatches, 0,
        "wire answers diverged from ground truth"
    );
    assert_eq!(report.errors, 0);
    assert!(report.answered >= 600);
    assert_eq!(report.shed, 0, "clean traffic must never be shed");
    assert!(!report.panicked);
}

#[test]
fn tcp_path_answers_byte_identically() {
    let config = WorldConfig::quick(23);
    let server = start(config.clone());
    let ep = server.endpoints().carriers[0].clone();

    // A dig-style length-prefixed exchange against carrier 0's listener.
    let wire = query_bytes(0x5151, "m.facebook.com");
    let mut stream = TcpStream::connect(ep.tcp).expect("connect");
    stream.write_all(&frame(&wire).unwrap()).expect("send");
    let mut data = Vec::new();
    let mut chunk = [0u8; 2048];
    let got = loop {
        if let Ok(payload) = require_frame(&data) {
            break payload.to_vec();
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before a full frame");
        data.extend_from_slice(&chunk[..n]);
    };
    drop(stream);
    let report = server.stop();
    assert_eq!(report.answered, 1);

    // Ground truth: the same single TCP call against a replica core.
    let mut truth = ServeCore::new(config);
    let want = truth
        .handle(0, Transport::Tcp, &wire)
        .into_reply()
        .expect("truth");
    assert_eq!(got, want, "TCP wire answer differs from the batch resolver");
    let msg = Message::decode(&got).unwrap();
    assert_eq!(msg.header.id, 0x5151);
    assert!(
        !msg.header.flags.truncated,
        "TCP answers are never truncated"
    );
    assert!(!msg.answer_addrs().is_empty());
}

#[test]
fn forced_tc_answers_recover_over_tcp_and_still_verify() {
    // The cellular fault profile truncates ~4% of carrier-resolver UDP
    // answers; the driver must retry those over TCP like a stub, and the
    // transcript (UDP resends + TCP legs included) must still replay
    // byte-identically into the ground-truth core.
    let mut config = WorldConfig::quick(2014);
    config.fault_profile = FaultProfile::Cellular;
    let server = start(config);
    let eps = server.endpoints().clone();
    let script = build_script(
        &eps,
        &MixConfig {
            queries: 2_000,
            miss_per_mille: 50,
        },
    );
    let stats = run(
        &eps,
        &script,
        &DriverConfig {
            qps: None,
            verify: true,
            chaos: ChaosProfile::Off,
        },
    )
    .expect("wire run");
    drop(server.stop());

    assert!(
        stats.tc_retries > 0,
        "expected some forced-TC retries under the cellular profile"
    );
    assert_eq!(stats.answered, 2_000);
    assert_eq!(stats.mismatches, 0, "TC retry path broke ground truth");
}

#[test]
fn malformed_wire_inputs_get_typed_rcodes_on_the_wire() {
    let server = start(WorldConfig::quick(31));
    let ep = server.endpoints().carriers[0].clone();
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.connect(ep.udp).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(3)))
        .expect("timeout");
    let mut buf = [0u8; 512];

    // QDCOUNT=0 header → 12-byte FORMERR echoing the id.
    let headeronly = [0xAB, 0xCD, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
    sock.send(&headeronly).expect("send");
    let n = sock.recv(&mut buf).expect("formerr reply");
    let view = MessageView::new(&buf[..n]).expect("parse");
    assert_eq!(n, 12);
    assert_eq!(view.id(), 0xABCD);
    assert!(view.is_response());
    assert_eq!(view.rcode(), Rcode::FormErr);

    // IQUERY opcode → NOTIMP echoing id and opcode.
    let mut iquery = query_bytes(0x1234, "m.yelp.com");
    iquery[2] = (iquery[2] & !0x78) | (Opcode::IQuery.code() << 3);
    sock.send(&iquery).expect("send");
    let n = sock.recv(&mut buf).expect("notimp reply");
    let view = MessageView::new(&buf[..n]).expect("parse");
    assert_eq!(view.id(), 0x1234);
    assert_eq!(view.opcode(), Opcode::IQuery);
    assert_eq!(view.rcode(), Rcode::NotImp);

    // A stray response and a runt are dropped silently: the next real
    // query still answers, proving the bridge didn't wedge.
    let mut stray = query_bytes(0x9999, "m.yelp.com");
    stray[2] |= 0x80;
    sock.send(&stray).expect("send");
    sock.send(b"runt").expect("send");
    let wire = query_bytes(0x4242, "m.facebook.com");
    sock.send(&wire).expect("send");
    let n = sock.recv(&mut buf).expect("real answer");
    let view = MessageView::new(&buf[..n]).expect("parse");
    assert_eq!(view.id(), 0x4242, "garbage must not eat the next answer");

    let report = server.stop();
    assert_eq!(report.rejected, 2);
    assert_eq!(report.errors, 2, "stray + runt are typed drops");
    assert_eq!(report.answered, 1);
    assert!(report.registry.counter_total("serve.formerr") >= 1);
    assert!(report.registry.counter_total("serve.notimp") >= 1);
    assert!(report.registry.counter_total("serve.dropped") >= 2);
}

#[test]
fn hostile_tcp_connections_are_evicted() {
    let server = start(WorldConfig::quick(47));
    let ep = server.endpoints().carriers[0].clone();

    // Oversized declared frame: closed before the body is read.
    let mut oversized = TcpStream::connect(ep.tcp).expect("connect");
    oversized
        .set_read_timeout(Some(Duration::from_secs(4)))
        .unwrap();
    oversized.write_all(&[0xFF, 0xFF, 0x00]).expect("send");
    let mut chunk = [0u8; 64];
    assert_eq!(
        oversized.read(&mut chunk).unwrap_or(0),
        0,
        "oversized frame must get the connection closed"
    );

    // Slowloris: a partial frame that never completes.
    let mut stalled = TcpStream::connect(ep.tcp).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(4)))
        .unwrap();
    stalled.write_all(&[0x00, 0x40, 0xAB]).expect("send");
    assert_eq!(
        stalled.read(&mut chunk).unwrap_or(0),
        0,
        "stalled writer must be evicted"
    );

    // A well-behaved connection still works afterwards.
    let wire = query_bytes(0x0707, "m.twitter.com");
    let mut good = TcpStream::connect(ep.tcp).expect("connect");
    good.write_all(&frame(&wire).unwrap()).expect("send");
    let mut data = Vec::new();
    loop {
        if let Ok(payload) = require_frame(&data) {
            let view = MessageView::new(payload).expect("parse");
            assert_eq!(view.id(), 0x0707);
            break;
        }
        let n = good.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed a well-behaved connection");
        data.extend_from_slice(&chunk[..n]);
    }

    let report = server.stop();
    assert!(report.evicted >= 2, "both hostile conns must be evicted");
    assert!(report.registry.counter_total("serve.conn_evicted") >= 2);
    assert_eq!(report.answered, 1);
}

#[test]
fn chaos_stress_soak_keeps_ground_truth_and_loses_no_answers() {
    // The headline hostile-wire invariant, end to end: under stress chaos
    // (garbage, mutants, duplicate floods, hostile TCP) the server never
    // panics, never drops a well-formed query's answer, and the
    // well-formed subset still verifies byte-for-byte against the batch
    // resolver.
    let server = start(WorldConfig::quick(13));
    let eps = server.endpoints().clone();
    let script = build_script(
        &eps,
        &MixConfig {
            queries: 600,
            miss_per_mille: 100,
        },
    );
    let stats = run(
        &eps,
        &script,
        &DriverConfig {
            qps: None,
            verify: true,
            chaos: ChaosProfile::Stress,
        },
    )
    .expect("wire run");
    let report = server.stop();

    assert!(!report.panicked, "server must survive chaos");
    assert_eq!(stats.answered, 600, "no well-formed answer may be lost");
    assert_eq!(stats.mismatches, 0, "chaos desynced the ground truth");
    assert!(stats.chaos_injected > 0);
    assert!(
        stats.evictions_observed > 0,
        "hostile TCP probes must be evicted"
    );
    assert!(
        stats.shed_replies > 0,
        "duplicate floods must drive admission shedding"
    );
    assert_eq!(
        stats.chaos_unanswered, 0,
        "every reply-owed chaos datagram must be answered on loopback"
    );

    // Server-side taxonomy: rejects, sheds, and evictions all counted.
    assert!(report.registry.counter_total("serve.formerr") > 0);
    assert!(report.registry.counter_total("serve.shed") > 0);
    assert!(report.registry.counter_total("serve.conn_evicted") > 0);
    assert!(report.shed > 0);
    assert!(report.evicted > 0);
}
