//! Loopback integration of the serving plane: a real [`DnsServer`] bound
//! on `127.0.0.1:0`, driven by the deterministic load generator, with
//! every wire answer replayed into a ground-truth [`ServeCore`] built from
//! the identical world config and compared byte-for-byte — over UDP, over
//! TCP, and through the forced-TC → TCP retry path.

use dnssim::{frame, require_frame};
use dnswire::builder::QueryBuilder;
use dnswire::message::Message;
use dnswire::rdata::RecordType;
use loadgen::{build_script, run, DriverConfig, MixConfig};
use serve::{DnsServer, FaultProfile, ServeCore, Transport, WorldConfig};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, TcpStream};

fn start(config: WorldConfig) -> DnsServer {
    DnsServer::start(config, Ipv4Addr::LOCALHOST).expect("bind loopback")
}

fn query_bytes(id: u16, name: &str) -> Vec<u8> {
    let mut q = QueryBuilder::new(id, name, RecordType::A)
        .recursion_desired(true)
        .build()
        .unwrap();
    q.advertise_udp_size(dnswire::edns::DEFAULT_UDP_PAYLOAD_SIZE);
    q.encode().unwrap()
}

#[test]
fn udp_wire_answers_match_the_batch_resolver() {
    let server = start(WorldConfig::quick(11));
    let eps = server.endpoints().clone();
    // Mixed traffic: catalog domains plus 10% cache-busting probe nonces.
    let script = build_script(
        &eps,
        &MixConfig {
            queries: 600,
            miss_per_mille: 100,
        },
    );
    let stats = run(
        &eps,
        &script,
        &DriverConfig {
            qps: None,
            verify: true,
        },
    )
    .expect("wire run");
    let report = server.stop();

    assert_eq!(stats.answered, 600, "every scripted query must answer");
    assert_eq!(
        stats.mismatches, 0,
        "wire answers diverged from ground truth"
    );
    assert_eq!(report.errors, 0);
    assert!(report.answered >= 600);
}

#[test]
fn tcp_path_answers_byte_identically() {
    let config = WorldConfig::quick(23);
    let server = start(config.clone());
    let ep = server.endpoints().carriers[0].clone();

    // A dig-style length-prefixed exchange against carrier 0's listener.
    let wire = query_bytes(0x5151, "m.facebook.com");
    let mut stream = TcpStream::connect(ep.tcp).expect("connect");
    stream.write_all(&frame(&wire).unwrap()).expect("send");
    let mut data = Vec::new();
    let mut chunk = [0u8; 2048];
    let got = loop {
        if let Ok(payload) = require_frame(&data) {
            break payload.to_vec();
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before a full frame");
        data.extend_from_slice(&chunk[..n]);
    };
    drop(stream);
    let report = server.stop();
    assert_eq!(report.answered, 1);

    // Ground truth: the same single TCP call against a replica core.
    let mut truth = ServeCore::new(config);
    let want = truth.answer(0, Transport::Tcp, &wire).expect("truth");
    assert_eq!(got, want, "TCP wire answer differs from the batch resolver");
    let msg = Message::decode(&got).unwrap();
    assert_eq!(msg.header.id, 0x5151);
    assert!(
        !msg.header.flags.truncated,
        "TCP answers are never truncated"
    );
    assert!(!msg.answer_addrs().is_empty());
}

#[test]
fn forced_tc_answers_recover_over_tcp_and_still_verify() {
    // The cellular fault profile truncates ~4% of carrier-resolver UDP
    // answers; the driver must retry those over TCP like a stub, and the
    // transcript (UDP resends + TCP legs included) must still replay
    // byte-identically into the ground-truth core.
    let mut config = WorldConfig::quick(2014);
    config.fault_profile = FaultProfile::Cellular;
    let server = start(config);
    let eps = server.endpoints().clone();
    let script = build_script(
        &eps,
        &MixConfig {
            queries: 2_000,
            miss_per_mille: 50,
        },
    );
    let stats = run(
        &eps,
        &script,
        &DriverConfig {
            qps: None,
            verify: true,
        },
    )
    .expect("wire run");
    drop(server.stop());

    assert!(
        stats.tc_retries > 0,
        "expected some forced-TC retries under the cellular profile"
    );
    assert_eq!(stats.answered, 2_000);
    assert_eq!(stats.mismatches, 0, "TC retry path broke ground truth");
}
